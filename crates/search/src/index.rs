//! The immutable search index: postings plus per-document metadata.
//!
//! Besides the inverted index the build interns *hosts* to dense ids
//! (so host-crowding can run on integer counters) and owns two lazily
//! built, lock-guarded caches shared by every [`crate::SearchEngine`]
//! wrapping the same `Arc<SearchIndex>`:
//!
//! * a [`StaticTable`] of per-document static score factors (plus their
//!   maximum product, the pruning bound's static fold-in) per distinct
//!   `(authority_weight, freshness_weight, freshness_half_life)`
//!   parameterization, and
//! * a [`BoundTable`] of per-term and per-block BM25 score upper bounds
//!   per distinct BM25 parameterization — the tables the max-score /
//!   block-max pruning kernel consults to skip documents and blocks.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use shift_corpus::{PageId, SourceType, World};
use shift_textkit::analyze;

use crate::bm25::{idf, term_score_bound, term_score_tf, Bm25Params};
use crate::docstore::{raw_doc_meta_bytes, CompactDocs, DocFields};
use crate::postings::{DocNum, PostingsStore, TermId};
use crate::sizing::{postings_size, SizePair};

/// Per-document metadata kept alongside the postings.
#[derive(Debug, Clone)]
pub struct DocMeta {
    /// The corpus page this document was built from.
    pub page: PageId,
    /// Canonical URL.
    pub url: String,
    /// Host (used for host-crowding limits).
    pub host: String,
    /// Dense interned host id (crowding counters index by this).
    pub host_id: u32,
    /// Domain authority in `[0, 1]`.
    pub authority: f64,
    /// Page age in days at the world's reference date.
    pub age_days: f64,
    /// Source typology of the hosting domain.
    pub source_type: SourceType,
    /// Total token count (title + body).
    pub token_len: u32,
    /// Title token count (positions below this are title positions).
    pub title_len: u32,
    /// Raw body text (for snippet extraction).
    pub body: String,
    /// Raw title.
    pub title: String,
}

/// The per-document static score factors for one ranking
/// parameterization: `(1 + authority_weight·authority)` and
/// `(1 + freshness_weight·exp(−age/half_life))`, kept as *two* factors
/// so the kernel applies them in exactly the same multiply sequence as
/// the reference scorer (f64 multiplication is not associative — a
/// pre-folded product would drift in the last ulp and break the
/// byte-identical SERP guarantee).
pub type StaticScores = Vec<(f64, f64)>;

/// One cached static-score parameterization: the per-document factor
/// pairs plus the maximum factor *product* over all documents — the
/// admissible static multiplier the pruning kernel folds into every
/// score upper bound (a document's true score is its text score times
/// its own `auth·fresh`, which is at most `max_factor`).
#[derive(Debug)]
pub struct StaticTable {
    /// Per-document `(authority_factor, freshness_factor)` pairs.
    pub factors: StaticScores,
    /// `max_d authority_factor(d) · freshness_factor(d)`.
    pub max_factor: f64,
}

/// Per-term score upper bounds for one BM25 parameterization.
///
/// `list_ub[t]` bounds the BM25 contribution of term `t` in *any*
/// document; `block_ub[t][b]` bounds it over block `b` of `t`'s posting
/// list (64 postings per block, see [`crate::postings::BLOCK_LEN`]).
/// Bounds cover relevance only — static factors and the proximity bonus
/// are folded in at query time by the kernel.
#[derive(Debug)]
pub struct BoundTable {
    pub(crate) list_ub: Vec<f64>,
    pub(crate) block_ub: Vec<Vec<f64>>,
}

impl BoundTable {
    /// Upper bound on the term's BM25 contribution in any document.
    #[inline]
    pub fn list_ub(&self, term: TermId) -> f64 {
        self.list_ub[term as usize]
    }

    /// Per-block upper bounds of one term's posting list.
    #[inline]
    pub fn block_ubs(&self, term: TermId) -> &[f64] {
        &self.block_ub[term as usize]
    }

    /// Estimated heap bytes held by the table.
    pub fn heap_bytes(&self) -> u64 {
        let blocks: u64 = self.block_ub.iter().map(|b| b.len() as u64).sum();
        (self.list_ub.len() as u64 + blocks) * std::mem::size_of::<f64>() as u64
            + self.block_ub.len() as u64 * std::mem::size_of::<Vec<f64>>() as u64
    }
}

/// Precomputed per-posting BM25 contributions ("impact scores") for one
/// BM25 parameterization.
///
/// Logically `scores[t][i]` is exactly `term_score_idf` evaluated for
/// posting `i` of term `t` — the same function the reference scorer
/// calls, invoked once at table-build time instead of once per scored
/// document, so summing cached impacts is *bit-identical* to
/// recomputing them. The kernel's scoring loop becomes one
/// [`ScoreTable::at`] load per matched cursor (no division, no
/// document-length fetch).
///
/// Physically a term's impacts are either a plain `f64` array or — on
/// compressed indexes, when a list has few *distinct* impact values
/// (BM25 over small integer tfs and quantized doc lengths collides
/// heavily) — a dictionary of the distinct values plus a fixed-width
/// bit-packed index per posting. The dictionary stores the exact `f64`
/// bits, so packing is lossless and byte-identity is preserved.
#[derive(Debug)]
pub struct ScoreTable {
    terms: Vec<TermScores>,
}

/// One term's physical impact representation (see [`ScoreTable`]).
#[derive(Debug)]
enum TermScores {
    /// Plain per-posting impact array.
    Raw(Vec<f64>),
    /// Dictionary of distinct impact bit patterns (first-seen order)
    /// plus per-posting dictionary indices, bit-packed at fixed
    /// `width`; `bits` carries 8 padding bytes so any index can be
    /// extracted with one aligned-window `u64` read.
    Packed {
        values: Vec<f64>,
        width: u8,
        bits: Vec<u8>,
    },
}

/// Pack a term's impact list into a dictionary + bit-packed indices
/// when the distinct-value count makes it worthwhile; keep it raw
/// otherwise.
fn pack_scores(raw: Vec<f64>) -> TermScores {
    let mut dict: HashMap<u64, u32> = HashMap::new();
    let mut values: Vec<f64> = Vec::new();
    let mut idx: Vec<u32> = Vec::with_capacity(raw.len());
    for &s in &raw {
        let next = values.len() as u32;
        let i = *dict.entry(s.to_bits()).or_insert_with(|| {
            values.push(s);
            next
        });
        idx.push(i);
    }
    // Below 2 distinct values per posting the packed form is a clear
    // win; otherwise the dictionary overhead can exceed the savings.
    if values.len() * 2 > raw.len() {
        return TermScores::Raw(raw);
    }
    let width = crate::codec::bits_for(values.len().saturating_sub(1) as u32);
    let mut bits = Vec::new();
    crate::codec::pack_bits(&mut bits, &idx, width);
    bits.extend_from_slice(&[0u8; 8]);
    TermScores::Packed {
        values,
        width,
        bits,
    }
}

impl ScoreTable {
    /// Builds a table from per-term impact lists, dictionary-packing
    /// each list when `pack` is set (the live searcher builds its
    /// per-segment tables through this, so segment impact storage
    /// matches the batch index's layout choice).
    pub(crate) fn from_term_lists(lists: Vec<Vec<f64>>, pack: bool) -> ScoreTable {
        ScoreTable {
            terms: lists
                .into_iter()
                .map(|l| {
                    if pack {
                        pack_scores(l)
                    } else {
                        TermScores::Raw(l)
                    }
                })
                .collect(),
        }
    }

    /// Impact score of posting `i` (global list index) of `term`.
    #[inline]
    pub fn at(&self, term: TermId, i: usize) -> f64 {
        match &self.terms[term as usize] {
            TermScores::Raw(v) => v[i],
            TermScores::Packed {
                values,
                width,
                bits,
            } => {
                let bitpos = i * *width as usize;
                let byte = bitpos >> 3;
                let window = u64::from_le_bytes(bits[byte..byte + 8].try_into().expect("8 bytes"));
                let mask = (1u64 << *width) - 1;
                values[((window >> (bitpos & 7)) & mask) as usize]
            }
        }
    }

    /// Impact scores of one term's posting list, in list order. Only
    /// available when the term's impacts are stored raw (always true on
    /// uncompressed indexes); the compressed path reads through
    /// [`ScoreTable::at`].
    #[inline]
    pub fn impacts(&self, term: TermId) -> &[f64] {
        match &self.terms[term as usize] {
            TermScores::Raw(v) => v,
            TermScores::Packed { .. } => {
                panic!("impacts() requires raw impact storage; use ScoreTable::at")
            }
        }
    }

    /// Estimated heap bytes held by the table as stored.
    pub fn heap_bytes(&self) -> u64 {
        let payload: u64 = self
            .terms
            .iter()
            .map(|t| match t {
                TermScores::Raw(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
                TermScores::Packed { values, bits, .. } => {
                    (values.len() * std::mem::size_of::<f64>() + bits.len()) as u64
                }
            })
            .sum();
        payload + self.terms.len() as u64 * std::mem::size_of::<TermScores>() as u64
    }

    /// Number of terms whose impacts are dictionary-packed (for tests
    /// and size reporting).
    pub fn packed_terms(&self) -> usize {
        self.terms
            .iter()
            .filter(|t| matches!(t, TermScores::Packed { .. }))
            .count()
    }
}

/// Cache key: the exact bits of the three parameters the static factors
/// depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticKey {
    authority_weight: u64,
    freshness_weight: u64,
    freshness_half_life: u64,
}

impl StaticKey {
    fn new(authority_weight: f64, freshness_weight: f64, freshness_half_life: f64) -> StaticKey {
        StaticKey {
            authority_weight: authority_weight.to_bits(),
            freshness_weight: freshness_weight.to_bits(),
            freshness_half_life: freshness_half_life.to_bits(),
        }
    }
}

/// Cache key for [`BoundTable`]s: the exact bits of the BM25 parameters
/// the bounds depend on (collection statistics are fixed per index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BoundKey {
    k1: u64,
    b: u64,
    title_weight: u64,
}

impl BoundKey {
    pub(crate) fn new(params: &Bm25Params) -> BoundKey {
        BoundKey {
            k1: params.k1.to_bits(),
            b: params.b.to_bits(),
            title_weight: params.title_weight.to_bits(),
        }
    }
}

/// Document metadata in one of two physical layouts: plain per-document
/// structs (raw indexes) or the dictionary-encoded columnar form of
/// [`CompactDocs`] (compressed indexes). Reads that must work on both
/// go through [`SearchIndex::doc_fields`] / [`SearchIndex::token_len`].
#[derive(Debug)]
enum DocStore {
    /// One owned struct per document.
    Raw(Vec<DocMeta>),
    /// Columnar + dictionary-encoded (see [`crate::docstore`]).
    Compact(Box<CompactDocs>),
}

impl DocStore {
    fn len(&self) -> usize {
        match self {
            DocStore::Raw(v) => v.len(),
            DocStore::Compact(c) => c.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The inverted index over a generated world.
#[derive(Debug)]
pub struct SearchIndex {
    postings: PostingsStore,
    docs: DocStore,
    host_count: u32,
    // Lazily built static-score tables, one per distinct parameter
    // triple. A handful of personas share an index, so a linear scan
    // over the entries is cheaper than any map.
    static_cache: RwLock<Vec<(StaticKey, Arc<StaticTable>)>>,
    // Lazily built pruning bound tables, one per distinct BM25 triple.
    bound_cache: RwLock<Vec<(BoundKey, Arc<BoundTable>)>>,
    // Lazily built per-posting impact-score tables, one per BM25 triple.
    score_cache: RwLock<Vec<(BoundKey, Arc<ScoreTable>)>>,
}

impl SearchIndex {
    /// Builds the index from every page of a world in the raw layout.
    pub fn build(world: &World) -> SearchIndex {
        SearchIndex::build_with_layout(world, false)
    }

    /// Builds the index from every page of a world in the compressed
    /// layout: delta/varint block-coded postings, packed impact tables
    /// and dictionary-encoded document metadata. SERPs are
    /// byte-identical to [`SearchIndex::build`] over the same world.
    pub fn build_compressed(world: &World) -> SearchIndex {
        SearchIndex::build_with_layout(world, true)
    }

    fn build_with_layout(world: &World, compressed: bool) -> SearchIndex {
        let mut postings = if compressed {
            PostingsStore::new_compressed()
        } else {
            PostingsStore::new()
        };
        let mut docs = Vec::with_capacity(world.pages().len());
        let mut hosts: HashMap<&str, u32> = HashMap::new();
        for page in world.pages() {
            let doc: DocNum = docs.len() as DocNum;
            let title_terms = analyze(&page.title);
            let body_terms = analyze(&page.body);
            postings.add_document(doc, &title_terms, &body_terms);
            let domain = world.domain(page.domain);
            let next_id = hosts.len() as u32;
            let host_id = *hosts.entry(domain.host.as_str()).or_insert(next_id);
            docs.push(DocMeta {
                page: page.id,
                url: page.url.clone(),
                host: domain.host.clone(),
                host_id,
                authority: domain.authority,
                age_days: page.age_days(world.now_day()) as f64,
                source_type: domain.source_type,
                token_len: (title_terms.len() + body_terms.len()) as u32,
                title_len: title_terms.len() as u32,
                body: page.body.clone(),
                title: page.title.clone(),
            });
        }
        postings.finish();
        let host_count = hosts.len() as u32;
        let docs = if compressed {
            // Host dictionary in interned (first-seen) id order, so the
            // compact layout resolves exactly the ids the build assigned.
            let mut host_names = vec![String::new(); hosts.len()];
            for (name, id) in hosts {
                host_names[id as usize] = name.to_string();
            }
            DocStore::Compact(Box::new(CompactDocs::from_metas(&docs, host_names)))
        } else {
            DocStore::Raw(docs)
        };
        SearchIndex {
            postings,
            docs,
            host_count,
            static_cache: RwLock::new(Vec::new()),
            bound_cache: RwLock::new(Vec::new()),
            score_cache: RwLock::new(Vec::new()),
        }
    }

    /// The postings store.
    pub fn postings(&self) -> &PostingsStore {
        &self.postings
    }

    /// True when this index holds the compressed layout.
    pub fn is_compressed(&self) -> bool {
        self.postings.is_compressed()
    }

    /// Document metadata by dense document number. Raw layout only —
    /// the compressed layout has no materialized [`DocMeta`]s; use
    /// [`SearchIndex::doc_fields`].
    #[inline]
    pub fn doc(&self, doc: DocNum) -> &DocMeta {
        match &self.docs {
            DocStore::Raw(v) => &v[doc as usize],
            DocStore::Compact(_) => {
                panic!("doc() requires the raw layout; use doc_fields()")
            }
        }
    }

    /// All documents. Raw layout only (see [`SearchIndex::doc`]).
    pub fn docs(&self) -> &[DocMeta] {
        match &self.docs {
            DocStore::Raw(v) => v,
            DocStore::Compact(_) => {
                panic!("docs() requires the raw layout; use doc_fields()")
            }
        }
    }

    /// A borrowed view of one document's metadata, available on both
    /// layouts (the compressed layout re-materializes only the URL).
    #[inline]
    pub fn doc_fields(&self, doc: DocNum) -> DocFields<'_> {
        match &self.docs {
            DocStore::Raw(v) => {
                let m = &v[doc as usize];
                DocFields {
                    page: m.page,
                    url: std::borrow::Cow::Borrowed(m.url.as_str()),
                    host: &m.host,
                    host_id: m.host_id,
                    authority: m.authority,
                    age_days: m.age_days,
                    source_type: m.source_type,
                    token_len: m.token_len,
                    title_len: m.title_len,
                    title: &m.title,
                    body: &m.body,
                }
            }
            DocStore::Compact(c) => c.fields(doc),
        }
    }

    /// Total token count of one document (hot path for impact builds),
    /// available on both layouts.
    #[inline]
    pub fn token_len(&self, doc: DocNum) -> u32 {
        match &self.docs {
            DocStore::Raw(v) => v[doc as usize].token_len,
            DocStore::Compact(c) => c.token_len(doc),
        }
    }

    /// Number of distinct hosts (host ids are dense below this).
    pub fn host_count(&self) -> u32 {
        self.host_count
    }

    /// The per-document static score factors (and their max product) for
    /// one parameter triple, computing and caching them on first
    /// request. Engines sharing an `Arc<SearchIndex>` and a
    /// parameterization share one table.
    pub fn static_scores(
        &self,
        authority_weight: f64,
        freshness_weight: f64,
        freshness_half_life: f64,
    ) -> Arc<StaticTable> {
        let key = StaticKey::new(authority_weight, freshness_weight, freshness_half_life);
        {
            let cache = self.static_cache.read();
            if let Some((_, table)) = cache.iter().find(|(k, _)| *k == key) {
                return Arc::clone(table);
            }
        }
        let factor = |authority: f64, age_days: f64| {
            let fresh = (-age_days / freshness_half_life).exp();
            (
                1.0 + authority_weight * authority,
                1.0 + freshness_weight * fresh,
            )
        };
        let factors: StaticScores = match &self.docs {
            DocStore::Raw(v) => v.iter().map(|m| factor(m.authority, m.age_days)).collect(),
            DocStore::Compact(c) => c.static_inputs().map(|(a, age)| factor(a, age)).collect(),
        };
        let max_factor = factors.iter().fold(0.0_f64, |m, &(a, f)| m.max(a * f));
        let table = Arc::new(StaticTable {
            factors,
            max_factor,
        });
        let mut cache = self.static_cache.write();
        // Another thread may have built the same entry while we computed;
        // keep the first so every holder shares one allocation.
        if let Some((_, existing)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(existing);
        }
        cache.push((key, Arc::clone(&table)));
        table
    }

    /// The per-term/per-block score upper bounds for one BM25
    /// parameterization, computing and caching them on first request.
    ///
    /// The build is one pass over the block-max tables (64× fewer
    /// entries than postings): each block bound evaluates BM25 at the
    /// block's componentwise extremes, and each list bound is the max
    /// over its blocks.
    pub fn bound_table(&self, params: &Bm25Params) -> Arc<BoundTable> {
        let key = BoundKey::new(params);
        {
            let cache = self.bound_cache.read();
            if let Some((_, table)) = cache.iter().find(|(k, _)| *k == key) {
                return Arc::clone(table);
            }
        }
        let store = &self.postings;
        let doc_count = store.doc_count();
        let avg_len = store.avg_doc_len();
        let vocab = store.vocabulary_size();
        let mut list_ub = Vec::with_capacity(vocab);
        let mut block_ub = Vec::with_capacity(vocab);
        for term in 0..vocab as TermId {
            let term_idf = idf(doc_count, store.doc_freq_by_id(term));
            let ubs: Vec<f64> = store
                .blocks_by_id(term)
                .iter()
                .map(|b| {
                    term_score_bound(
                        params,
                        term_idf,
                        b.max_title_tf,
                        b.max_body_tf,
                        b.min_doc_len,
                        avg_len,
                    )
                })
                .collect();
            list_ub.push(ubs.iter().fold(0.0_f64, |m, &u| m.max(u)));
            block_ub.push(ubs);
        }
        let table = Arc::new(BoundTable { list_ub, block_ub });
        let mut cache = self.bound_cache.write();
        if let Some((_, existing)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(existing);
        }
        cache.push((key, Arc::clone(&table)));
        table
    }

    /// The per-posting impact scores for one BM25 parameterization,
    /// computing and caching them on first request.
    ///
    /// Each entry calls [`term_score_idf`] with exactly the arguments
    /// the kernel's scoring path used to pass per scored document, so
    /// reading the table is bit-identical to recomputing the score.
    pub fn score_table(&self, params: &Bm25Params) -> Arc<ScoreTable> {
        let key = BoundKey::new(params);
        {
            let cache = self.score_cache.read();
            if let Some((_, table)) = cache.iter().find(|(k, _)| *k == key) {
                return Arc::clone(table);
            }
        }
        let store = &self.postings;
        let doc_count = store.doc_count();
        let avg_len = store.avg_doc_len();
        let vocab = store.vocabulary_size();
        let compressed = store.is_compressed();
        let mut terms = Vec::with_capacity(vocab);
        for term in 0..vocab as TermId {
            let term_idf = idf(doc_count, store.doc_freq_by_id(term));
            let mut raw = Vec::with_capacity(store.doc_freq_by_id(term) as usize);
            store.for_each_posting(term, |_, doc, title_tf, body_tf| {
                let doc_len = f64::from(self.token_len(doc));
                raw.push(term_score_tf(
                    params, title_tf, body_tf, term_idf, doc_len, avg_len,
                ));
            });
            // Raw indexes keep plain arrays (the `impacts()` slice
            // accessor stays available); compressed indexes
            // dictionary-pack lists with few distinct values.
            terms.push(if compressed {
                pack_scores(raw)
            } else {
                TermScores::Raw(raw)
            });
        }
        let table = Arc::new(ScoreTable { terms });
        let mut cache = self.score_cache.write();
        if let Some((_, existing)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(existing);
        }
        cache.push((key, Arc::clone(&table)));
        table
    }

    /// Number of cached static-score parameterizations (for tests).
    pub fn static_cache_len(&self) -> usize {
        self.static_cache.read().len()
    }

    /// Number of cached pruning-bound parameterizations (for tests).
    pub fn bound_cache_len(&self) -> usize {
        self.bound_cache.read().len()
    }

    /// Number of cached impact-score parameterizations (for tests).
    pub fn score_cache_len(&self) -> usize {
        self.score_cache.read().len()
    }

    /// Size and estimated-heap-footprint report over the whole index:
    /// postings, positions, block-max tables, cached bound tables and
    /// document metadata, each as held in memory, plus the raw-layout
    /// extrapolation ([`IndexStats::raw_bytes`]) a compressed index is
    /// measured against. Printed by the kernel bench; the compression
    /// gate rides on [`IndexStats::ratio`].
    pub fn stats(&self) -> IndexStats {
        let p = self.postings.stats();
        let doc_meta = match &self.docs {
            DocStore::Raw(v) => SizePair::raw(raw_doc_meta_bytes(v)),
            DocStore::Compact(c) => SizePair {
                raw_bytes: c.raw_bytes(),
                compressed_bytes: c.heap_bytes(),
            },
        };
        let bound_table_bytes: u64 = self
            .bound_cache
            .read()
            .iter()
            .map(|(_, t)| t.heap_bytes())
            .sum();
        let score_cache = self.score_cache.read();
        let score_table_bytes: u64 = score_cache.iter().map(|(_, t)| t.heap_bytes()).sum();
        // Raw extrapolation of the impact tables: each cached table
        // logically holds one f64 per posting plus one list header per
        // term, however its lists are physically packed.
        let score_table_raw: u64 = score_cache.len() as u64
            * (p.postings * std::mem::size_of::<f64>() as u64
                + p.vocabulary as u64 * std::mem::size_of::<Vec<f64>>() as u64);
        drop(score_cache);
        let static_table_bytes: u64 = self.static_cache.read().len() as u64
            * self.docs.len() as u64
            * std::mem::size_of::<(f64, f64)>() as u64;
        // Structures whose layout is identical in both modes.
        let shared =
            SizePair::raw(p.block_bytes + p.dict_bytes + bound_table_bytes + static_table_bytes);
        let total = postings_size(&p)
            + SizePair {
                raw_bytes: score_table_raw,
                compressed_bytes: score_table_bytes,
            }
            + doc_meta
            + shared;
        IndexStats {
            docs: self.docs.len(),
            hosts: self.host_count,
            vocabulary: p.vocabulary,
            postings: p.postings,
            positions: p.positions,
            postings_bytes: p.postings_bytes,
            positions_bytes: p.positions_bytes,
            block_entries: p.block_entries,
            block_bytes: p.block_bytes,
            dict_bytes: p.dict_bytes,
            bound_table_bytes,
            score_table_bytes,
            doc_meta_bytes: doc_meta.compressed_bytes,
            estimated_heap_bytes: total.compressed_bytes,
            raw_bytes: total.raw_bytes,
            compressed_bytes: total.compressed_bytes,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Size report over a [`SearchIndex`] (see [`SearchIndex::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Indexed documents.
    pub docs: usize,
    /// Distinct hosts.
    pub hosts: u32,
    /// Distinct terms.
    pub vocabulary: usize,
    /// Total postings (term–document pairs).
    pub postings: u64,
    /// Total stored token positions.
    pub positions: u64,
    /// Estimated heap bytes of posting structs.
    pub postings_bytes: u64,
    /// Estimated heap bytes of position arrays.
    pub positions_bytes: u64,
    /// Block-max table entries across all lists.
    pub block_entries: u64,
    /// Estimated heap bytes of the block-max tables.
    pub block_bytes: u64,
    /// Estimated heap bytes of the term dictionary (strings + entries).
    pub dict_bytes: u64,
    /// Estimated heap bytes of cached pruning bound tables.
    pub bound_table_bytes: u64,
    /// Estimated heap bytes of cached per-posting impact-score tables.
    pub score_table_bytes: u64,
    /// Estimated heap bytes of document metadata (incl. raw text).
    pub doc_meta_bytes: u64,
    /// Estimated total heap footprint of the index as held.
    pub estimated_heap_bytes: u64,
    /// What the raw (uncompressed) layout would cost for the same index
    /// — postings, positions, impact tables and metadata extrapolated
    /// to their plain-array forms. Equals `compressed_bytes` on a raw
    /// index.
    pub raw_bytes: u64,
    /// Bytes actually held (same as `estimated_heap_bytes`; kept as an
    /// explicit pair with `raw_bytes` for ratio reporting).
    pub compressed_bytes: u64,
}

impl IndexStats {
    /// Compression ratio `compressed / raw` (1.0 on a raw index).
    pub fn ratio(&self) -> f64 {
        SizePair {
            raw_bytes: self.raw_bytes,
            compressed_bytes: self.compressed_bytes,
        }
        .ratio()
    }
}

impl fmt::Display for IndexStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn mib(bytes: u64) -> f64 {
            bytes as f64 / (1024.0 * 1024.0)
        }
        writeln!(
            f,
            "index: {} docs, {} hosts, {} terms",
            self.docs, self.hosts, self.vocabulary
        )?;
        writeln!(
            f,
            "  postings  {:>12} entries  {:>9.2} MiB",
            self.postings,
            mib(self.postings_bytes)
        )?;
        writeln!(
            f,
            "  positions {:>12} entries  {:>9.2} MiB",
            self.positions,
            mib(self.positions_bytes)
        )?;
        writeln!(
            f,
            "  block-max {:>12} entries  {:>9.2} MiB (+{:.2} MiB cached bounds)",
            self.block_entries,
            mib(self.block_bytes),
            mib(self.bound_table_bytes)
        )?;
        writeln!(
            f,
            "  impacts   {:>34.2} MiB (cached per-posting scores)",
            mib(self.score_table_bytes)
        )?;
        writeln!(f, "  dict      {:>34.2} MiB", mib(self.dict_bytes))?;
        writeln!(f, "  doc meta  {:>34.2} MiB", mib(self.doc_meta_bytes))?;
        writeln!(
            f,
            "  estimated heap {:>29.2} MiB",
            mib(self.estimated_heap_bytes)
        )?;
        write!(
            f,
            "  vs raw layout  {:>29.2} MiB  (ratio {:.3})",
            mib(self.raw_bytes),
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::WorldConfig;

    fn index() -> SearchIndex {
        let world = World::generate(&WorldConfig::small(), 99);
        SearchIndex::build(&world)
    }

    #[test]
    fn indexes_every_page() {
        let world = World::generate(&WorldConfig::small(), 99);
        let idx = SearchIndex::build(&world);
        assert_eq!(idx.len(), world.pages().len());
        assert_eq!(idx.postings().doc_count() as usize, world.pages().len());
    }

    #[test]
    fn doc_meta_matches_world() {
        let world = World::generate(&WorldConfig::small(), 99);
        let idx = SearchIndex::build(&world);
        for doc in idx.docs().iter().take(50) {
            let page = world.page(doc.page);
            assert_eq!(doc.url, page.url);
            assert_eq!(doc.host, world.domain(page.domain).host);
            assert!(doc.age_days >= 0.0);
        }
    }

    #[test]
    fn host_ids_are_dense_and_consistent() {
        let idx = index();
        let n = idx.host_count();
        assert!(n > 0);
        let mut seen: HashMap<u32, &str> = HashMap::new();
        for doc in idx.docs() {
            assert!(doc.host_id < n, "host id out of range");
            // Same id ⇔ same host string.
            let host = seen.entry(doc.host_id).or_insert(doc.host.as_str());
            assert_eq!(*host, doc.host);
        }
    }

    #[test]
    fn static_scores_are_cached_and_shared() {
        let idx = index();
        assert_eq!(idx.static_cache_len(), 0);
        let a = idx.static_scores(2.2, 0.12, 365.0);
        let b = idx.static_scores(2.2, 0.12, 365.0);
        assert!(Arc::ptr_eq(&a, &b), "same params must share one vector");
        assert_eq!(idx.static_cache_len(), 1);
        let c = idx.static_scores(0.5, 0.9, 120.0);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(idx.static_cache_len(), 2);
        assert_eq!(a.factors.len(), idx.len());
    }

    #[test]
    fn static_scores_match_direct_computation() {
        let idx = index();
        let (aw, fw, hl) = (2.2, 0.12, 365.0);
        let table = idx.static_scores(aw, fw, hl);
        for (meta, &(auth, fresh)) in idx.docs().iter().zip(table.factors.iter()).take(50) {
            assert_eq!(auth.to_bits(), (1.0 + aw * meta.authority).to_bits());
            let expect = 1.0 + fw * (-meta.age_days / hl).exp();
            assert_eq!(fresh.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn static_table_max_factor_covers_every_document() {
        let idx = index();
        let table = idx.static_scores(2.2, 0.12, 365.0);
        let mut max_seen = 0.0_f64;
        for &(a, f) in table.factors.iter() {
            assert!(a * f <= table.max_factor);
            max_seen = max_seen.max(a * f);
        }
        assert_eq!(max_seen.to_bits(), table.max_factor.to_bits());
        assert!(table.max_factor >= 1.0, "weights are nonnegative");
    }

    #[test]
    fn bound_tables_are_cached_and_shared() {
        let idx = index();
        assert_eq!(idx.bound_cache_len(), 0);
        let p = crate::bm25::Bm25Params::default();
        let a = idx.bound_table(&p);
        let b = idx.bound_table(&p);
        assert!(Arc::ptr_eq(&a, &b), "same params must share one table");
        assert_eq!(idx.bound_cache_len(), 1);
        let q = crate::bm25::Bm25Params {
            k1: 0.9,
            ..crate::bm25::Bm25Params::default()
        };
        let c = idx.bound_table(&q);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(idx.bound_cache_len(), 2);
    }

    #[test]
    fn bound_table_dominates_real_term_scores() {
        use crate::bm25::{idf, term_score_idf};
        use crate::postings::BLOCK_LEN;

        let idx = index();
        let params = crate::bm25::Bm25Params::default();
        let bounds = idx.bound_table(&params);
        let store = idx.postings();
        let avg_len = store.avg_doc_len();
        for term in ["laptop", "battery", "review", "best"] {
            let id = store.term_id(term).expect("term indexed");
            let term_idf = idf(store.doc_count(), store.doc_freq_by_id(id));
            let blocks = bounds.block_ubs(id);
            for (i, p) in store.postings_by_id(id).iter().enumerate() {
                let doc_len = f64::from(idx.doc(p.doc).token_len);
                let s = term_score_idf(&params, p, term_idf, doc_len, avg_len);
                let block_bound = blocks[i / BLOCK_LEN];
                assert!(s <= block_bound, "{term} posting {i}: {s} > {block_bound}");
                assert!(block_bound <= bounds.list_ub(id));
            }
        }
    }

    #[test]
    fn stats_report_is_consistent() {
        let idx = index();
        let _ = idx.bound_table(&crate::bm25::Bm25Params::default());
        let s = idx.stats();
        assert_eq!(s.docs, idx.len());
        assert_eq!(s.vocabulary, idx.postings().vocabulary_size());
        assert!(s.postings > 0 && s.positions >= s.postings);
        assert!(s.block_entries > 0 && s.bound_table_bytes > 0);
        assert!(s.dict_bytes > 0, "dictionary footprint must be reported");
        assert!(
            s.estimated_heap_bytes
                >= s.postings_bytes + s.positions_bytes + s.block_bytes + s.doc_meta_bytes
        );
        // Display renders without panicking and mentions the doc count.
        let rendered = format!("{s}");
        assert!(rendered.contains(&format!("{} docs", s.docs)));
    }

    #[test]
    fn vocabulary_contains_topic_terms() {
        let idx = index();
        // Stemmed topic words must be indexed somewhere.
        for term in ["laptop", "battery", "review"] {
            assert!(
                idx.postings().doc_freq(term) > 0,
                "term {term} missing from vocabulary"
            );
        }
    }

    #[test]
    fn title_positions_precede_body_positions() {
        let idx = index();
        let doc0 = idx.doc(0);
        assert!(doc0.title_len <= doc0.token_len);
    }

    #[test]
    fn is_empty_only_for_zero_docs() {
        let idx = index();
        assert!(!idx.is_empty());
    }
}
