//! The immutable search index: postings plus per-document metadata.
//!
//! Besides the inverted index the build interns *hosts* to dense ids
//! (so host-crowding can run on integer counters) and owns a lazily
//! built, lock-guarded cache of per-document static score factors —
//! one entry per distinct `(authority_weight, freshness_weight,
//! freshness_half_life)` parameterization, shared by every
//! [`crate::SearchEngine`] wrapping the same `Arc<SearchIndex>`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use shift_corpus::{PageId, SourceType, World};
use shift_textkit::analyze;

use crate::postings::{DocNum, PostingsStore};

/// Per-document metadata kept alongside the postings.
#[derive(Debug, Clone)]
pub struct DocMeta {
    /// The corpus page this document was built from.
    pub page: PageId,
    /// Canonical URL.
    pub url: String,
    /// Host (used for host-crowding limits).
    pub host: String,
    /// Dense interned host id (crowding counters index by this).
    pub host_id: u32,
    /// Domain authority in `[0, 1]`.
    pub authority: f64,
    /// Page age in days at the world's reference date.
    pub age_days: f64,
    /// Source typology of the hosting domain.
    pub source_type: SourceType,
    /// Total token count (title + body).
    pub token_len: u32,
    /// Title token count (positions below this are title positions).
    pub title_len: u32,
    /// Raw body text (for snippet extraction).
    pub body: String,
    /// Raw title.
    pub title: String,
}

/// The per-document static score factors for one ranking
/// parameterization: `(1 + authority_weight·authority)` and
/// `(1 + freshness_weight·exp(−age/half_life))`, kept as *two* factors
/// so the kernel applies them in exactly the same multiply sequence as
/// the reference scorer (f64 multiplication is not associative — a
/// pre-folded product would drift in the last ulp and break the
/// byte-identical SERP guarantee).
pub type StaticScores = Vec<(f64, f64)>;

/// Cache key: the exact bits of the three parameters the static factors
/// depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticKey {
    authority_weight: u64,
    freshness_weight: u64,
    freshness_half_life: u64,
}

impl StaticKey {
    fn new(authority_weight: f64, freshness_weight: f64, freshness_half_life: f64) -> StaticKey {
        StaticKey {
            authority_weight: authority_weight.to_bits(),
            freshness_weight: freshness_weight.to_bits(),
            freshness_half_life: freshness_half_life.to_bits(),
        }
    }
}

/// The inverted index over a generated world.
#[derive(Debug)]
pub struct SearchIndex {
    postings: PostingsStore,
    docs: Vec<DocMeta>,
    host_count: u32,
    // Lazily built static-score vectors, one per distinct parameter
    // triple. A handful of personas share an index, so a linear scan
    // over the entries is cheaper than any map.
    static_cache: RwLock<Vec<(StaticKey, Arc<StaticScores>)>>,
}

impl SearchIndex {
    /// Builds the index from every page of a world.
    pub fn build(world: &World) -> SearchIndex {
        let mut postings = PostingsStore::new();
        let mut docs = Vec::with_capacity(world.pages().len());
        let mut hosts: HashMap<&str, u32> = HashMap::new();
        for page in world.pages() {
            let doc: DocNum = docs.len() as DocNum;
            let title_terms = analyze(&page.title);
            let body_terms = analyze(&page.body);
            postings.add_document(doc, &title_terms, &body_terms);
            let domain = world.domain(page.domain);
            let next_id = hosts.len() as u32;
            let host_id = *hosts.entry(domain.host.as_str()).or_insert(next_id);
            docs.push(DocMeta {
                page: page.id,
                url: page.url.clone(),
                host: domain.host.clone(),
                host_id,
                authority: domain.authority,
                age_days: page.age_days(world.now_day()) as f64,
                source_type: domain.source_type,
                token_len: (title_terms.len() + body_terms.len()) as u32,
                title_len: title_terms.len() as u32,
                body: page.body.clone(),
                title: page.title.clone(),
            });
        }
        SearchIndex {
            postings,
            docs,
            host_count: hosts.len() as u32,
            static_cache: RwLock::new(Vec::new()),
        }
    }

    /// The postings store.
    pub fn postings(&self) -> &PostingsStore {
        &self.postings
    }

    /// Document metadata by dense document number.
    #[inline]
    pub fn doc(&self, doc: DocNum) -> &DocMeta {
        &self.docs[doc as usize]
    }

    /// All documents.
    pub fn docs(&self) -> &[DocMeta] {
        &self.docs
    }

    /// Number of distinct hosts (host ids are dense below this).
    pub fn host_count(&self) -> u32 {
        self.host_count
    }

    /// The per-document static score factors for one parameter triple,
    /// computing and caching them on first request. Engines sharing an
    /// `Arc<SearchIndex>` and a parameterization share one vector.
    pub fn static_scores(
        &self,
        authority_weight: f64,
        freshness_weight: f64,
        freshness_half_life: f64,
    ) -> Arc<StaticScores> {
        let key = StaticKey::new(authority_weight, freshness_weight, freshness_half_life);
        {
            let cache = self.static_cache.read();
            if let Some((_, scores)) = cache.iter().find(|(k, _)| *k == key) {
                return Arc::clone(scores);
            }
        }
        let scores: Arc<StaticScores> = Arc::new(
            self.docs
                .iter()
                .map(|meta| {
                    let fresh = (-meta.age_days / freshness_half_life).exp();
                    (
                        1.0 + authority_weight * meta.authority,
                        1.0 + freshness_weight * fresh,
                    )
                })
                .collect(),
        );
        let mut cache = self.static_cache.write();
        // Another thread may have built the same entry while we computed;
        // keep the first so every holder shares one allocation.
        if let Some((_, existing)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(existing);
        }
        cache.push((key, Arc::clone(&scores)));
        scores
    }

    /// Number of cached static-score parameterizations (for tests).
    pub fn static_cache_len(&self) -> usize {
        self.static_cache.read().len()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::WorldConfig;

    fn index() -> SearchIndex {
        let world = World::generate(&WorldConfig::small(), 99);
        SearchIndex::build(&world)
    }

    #[test]
    fn indexes_every_page() {
        let world = World::generate(&WorldConfig::small(), 99);
        let idx = SearchIndex::build(&world);
        assert_eq!(idx.len(), world.pages().len());
        assert_eq!(idx.postings().doc_count() as usize, world.pages().len());
    }

    #[test]
    fn doc_meta_matches_world() {
        let world = World::generate(&WorldConfig::small(), 99);
        let idx = SearchIndex::build(&world);
        for doc in idx.docs().iter().take(50) {
            let page = world.page(doc.page);
            assert_eq!(doc.url, page.url);
            assert_eq!(doc.host, world.domain(page.domain).host);
            assert!(doc.age_days >= 0.0);
        }
    }

    #[test]
    fn host_ids_are_dense_and_consistent() {
        let idx = index();
        let n = idx.host_count();
        assert!(n > 0);
        let mut seen: HashMap<u32, &str> = HashMap::new();
        for doc in idx.docs() {
            assert!(doc.host_id < n, "host id out of range");
            // Same id ⇔ same host string.
            let host = seen.entry(doc.host_id).or_insert(doc.host.as_str());
            assert_eq!(*host, doc.host);
        }
    }

    #[test]
    fn static_scores_are_cached_and_shared() {
        let idx = index();
        assert_eq!(idx.static_cache_len(), 0);
        let a = idx.static_scores(2.2, 0.12, 365.0);
        let b = idx.static_scores(2.2, 0.12, 365.0);
        assert!(Arc::ptr_eq(&a, &b), "same params must share one vector");
        assert_eq!(idx.static_cache_len(), 1);
        let c = idx.static_scores(0.5, 0.9, 120.0);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(idx.static_cache_len(), 2);
        assert_eq!(a.len(), idx.len());
    }

    #[test]
    fn static_scores_match_direct_computation() {
        let idx = index();
        let (aw, fw, hl) = (2.2, 0.12, 365.0);
        let scores = idx.static_scores(aw, fw, hl);
        for (meta, &(auth, fresh)) in idx.docs().iter().zip(scores.iter()).take(50) {
            assert_eq!(auth.to_bits(), (1.0 + aw * meta.authority).to_bits());
            let expect = 1.0 + fw * (-meta.age_days / hl).exp();
            assert_eq!(fresh.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn vocabulary_contains_topic_terms() {
        let idx = index();
        // Stemmed topic words must be indexed somewhere.
        for term in ["laptop", "battery", "review"] {
            assert!(
                idx.postings().doc_freq(term) > 0,
                "term {term} missing from vocabulary"
            );
        }
    }

    #[test]
    fn title_positions_precede_body_positions() {
        let idx = index();
        let doc0 = idx.doc(0);
        assert!(doc0.title_len <= doc0.token_len);
    }

    #[test]
    fn is_empty_only_for_zero_docs() {
        let idx = index();
        assert!(!idx.is_empty());
    }
}
