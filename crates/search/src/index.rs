//! The immutable search index: postings plus per-document metadata.

use shift_corpus::{PageId, SourceType, World};
use shift_textkit::analyze;

use crate::postings::{DocNum, PostingsStore};

/// Per-document metadata kept alongside the postings.
#[derive(Debug, Clone)]
pub struct DocMeta {
    /// The corpus page this document was built from.
    pub page: PageId,
    /// Canonical URL.
    pub url: String,
    /// Host (used for host-crowding limits).
    pub host: String,
    /// Domain authority in `[0, 1]`.
    pub authority: f64,
    /// Page age in days at the world's reference date.
    pub age_days: f64,
    /// Source typology of the hosting domain.
    pub source_type: SourceType,
    /// Total token count (title + body).
    pub token_len: u32,
    /// Title token count (positions below this are title positions).
    pub title_len: u32,
    /// Raw body text (for snippet extraction).
    pub body: String,
    /// Raw title.
    pub title: String,
}

/// The inverted index over a generated world.
#[derive(Debug)]
pub struct SearchIndex {
    postings: PostingsStore,
    docs: Vec<DocMeta>,
}

impl SearchIndex {
    /// Builds the index from every page of a world.
    pub fn build(world: &World) -> SearchIndex {
        let mut postings = PostingsStore::new();
        let mut docs = Vec::with_capacity(world.pages().len());
        for page in world.pages() {
            let doc: DocNum = docs.len() as DocNum;
            let title_terms = analyze(&page.title);
            let body_terms = analyze(&page.body);
            postings.add_document(doc, &title_terms, &body_terms);
            let domain = world.domain(page.domain);
            docs.push(DocMeta {
                page: page.id,
                url: page.url.clone(),
                host: domain.host.clone(),
                authority: domain.authority,
                age_days: page.age_days(world.now_day()) as f64,
                source_type: domain.source_type,
                token_len: (title_terms.len() + body_terms.len()) as u32,
                title_len: title_terms.len() as u32,
                body: page.body.clone(),
                title: page.title.clone(),
            });
        }
        SearchIndex { postings, docs }
    }

    /// The postings store.
    pub fn postings(&self) -> &PostingsStore {
        &self.postings
    }

    /// Document metadata by dense document number.
    pub fn doc(&self, doc: DocNum) -> &DocMeta {
        &self.docs[doc as usize]
    }

    /// All documents.
    pub fn docs(&self) -> &[DocMeta] {
        &self.docs
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::WorldConfig;

    fn index() -> SearchIndex {
        let world = World::generate(&WorldConfig::small(), 99);
        SearchIndex::build(&world)
    }

    #[test]
    fn indexes_every_page() {
        let world = World::generate(&WorldConfig::small(), 99);
        let idx = SearchIndex::build(&world);
        assert_eq!(idx.len(), world.pages().len());
        assert_eq!(idx.postings().doc_count() as usize, world.pages().len());
    }

    #[test]
    fn doc_meta_matches_world() {
        let world = World::generate(&WorldConfig::small(), 99);
        let idx = SearchIndex::build(&world);
        for doc in idx.docs().iter().take(50) {
            let page = world.page(doc.page);
            assert_eq!(doc.url, page.url);
            assert_eq!(doc.host, world.domain(page.domain).host);
            assert!(doc.age_days >= 0.0);
        }
    }

    #[test]
    fn vocabulary_contains_topic_terms() {
        let idx = index();
        // Stemmed topic words must be indexed somewhere.
        for term in ["laptop", "battery", "review"] {
            assert!(
                idx.postings().doc_freq(term) > 0,
                "term {term} missing from vocabulary"
            );
        }
    }

    #[test]
    fn title_positions_precede_body_positions() {
        let idx = index();
        let doc0 = idx.doc(0);
        assert!(doc0.title_len <= doc0.token_len);
    }

    #[test]
    fn is_empty_only_for_zero_docs() {
        let idx = index();
        assert!(!idx.is_empty());
    }
}
