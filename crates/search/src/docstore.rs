//! Document metadata storage: plain per-document structs or the
//! dictionary-encoded columnar form used by compressed indexes.
//!
//! The raw layout ([`DocMeta`]) keeps one struct per document with owned
//! `String`s for URL, host, title and body — convenient, but at millions
//! of documents the per-string allocation headers and the host
//! duplication dominate. The compact layout ([`CompactDocs`]) stores:
//!
//! * numeric columns (`page`, `host_id`, `authority`, `age_days`,
//!   `source_type`, `token_len`, `title_len`) as flat arrays;
//! * every title and body concatenated into one shared text arena,
//!   addressed by a flat offset array (two spans per document);
//! * hosts as a dictionary: the distinct host strings once, referenced
//!   by the dense interned `host_id` each document already carries;
//! * URLs as a *front-coded* dictionary: the URLs sorted, split into
//!   groups of [`URL_GROUP`], each group storing its first URL verbatim
//!   and every subsequent entry as `(shared-prefix len, suffix)` —
//!   URLs on one host share long scheme+host+path prefixes, so this
//!   removes most of their bytes. A per-document rank array maps doc
//!   number → sorted position.
//!
//! Reads go through [`DocFields`], a borrowed view both layouts can
//! produce; only the front-coded URL needs re-materialization (a
//! `Cow::Owned` allocation) and only on the compact layout.

use std::borrow::Cow;

use shift_corpus::{PageId, SourceType};

use crate::codec::{read_varint, write_varint};
use crate::index::DocMeta;
use crate::postings::DocNum;

/// Number of URLs per front-coded group: the first is stored verbatim,
/// the rest as `(lcp, suffix)` against their predecessor.
pub const URL_GROUP: usize = 16;

/// A borrowed view of one document's metadata, produced by both the raw
/// and the compact layout. Everything except the URL borrows directly
/// from the store; the URL is borrowed on the raw layout and
/// re-materialized (owned) on the compact layout.
#[derive(Debug)]
pub struct DocFields<'a> {
    /// The corpus page this document was built from.
    pub page: PageId,
    /// Canonical URL.
    pub url: Cow<'a, str>,
    /// Host (used for host-crowding limits).
    pub host: &'a str,
    /// Dense interned host id.
    pub host_id: u32,
    /// Domain authority in `[0, 1]`.
    pub authority: f64,
    /// Page age in days at the world's reference date.
    pub age_days: f64,
    /// Source typology of the hosting domain.
    pub source_type: SourceType,
    /// Total token count (title + body).
    pub token_len: u32,
    /// Title token count.
    pub title_len: u32,
    /// Raw title.
    pub title: &'a str,
    /// Raw body text (for snippet extraction).
    pub body: &'a str,
}

/// Columnar, dictionary-encoded document metadata (see module docs).
#[derive(Debug)]
pub struct CompactDocs {
    pages: Vec<PageId>,
    host_ids: Vec<u32>,
    authorities: Vec<f64>,
    ages: Vec<f64>,
    source_types: Vec<SourceType>,
    token_lens: Vec<u32>,
    title_lens: Vec<u32>,
    /// All titles and bodies, concatenated per document.
    text: String,
    /// `2n + 1` offsets into `text`: doc `i`'s title is
    /// `text[offs[2i]..offs[2i+1]]`, its body `text[offs[2i+1]..offs[2i+2]]`.
    text_offs: Vec<u32>,
    /// Distinct host strings, indexed by `host_id`.
    hosts: Vec<String>,
    /// Front-coded sorted URL dictionary payload.
    url_data: Vec<u8>,
    /// Byte offset of each group's start in `url_data`.
    url_group_offs: Vec<u32>,
    /// Doc number → rank of its URL in the sorted dictionary.
    url_refs: Vec<u32>,
    /// What the raw `DocMeta` layout would cost for the same documents,
    /// captured at conversion time for compression reporting.
    raw_bytes: u64,
}

/// Length of the longest common prefix of `a` and `b`, clamped to a
/// UTF-8 character boundary of both.
fn common_prefix(a: &str, b: &str) -> usize {
    let mut n = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    while n > 0 && (!a.is_char_boundary(n) || !b.is_char_boundary(n)) {
        n -= 1;
    }
    n
}

impl CompactDocs {
    /// Converts raw per-document metadata into the compact layout. The
    /// `hosts` dictionary must list the distinct host strings in
    /// `host_id` order (the build's first-seen interning order).
    pub fn from_metas(metas: &[DocMeta], hosts: Vec<String>) -> CompactDocs {
        let n = metas.len();
        let raw_bytes = raw_doc_meta_bytes(metas);
        let mut text = String::new();
        let mut text_offs = Vec::with_capacity(2 * n + 1);
        text_offs.push(0u32);
        for m in metas {
            text.push_str(&m.title);
            text_offs.push(text.len() as u32);
            text.push_str(&m.body);
            text_offs.push(text.len() as u32);
        }

        // Sort URL ranks (each URL is unique per document), then
        // front-code in groups.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| metas[a as usize].url.cmp(&metas[b as usize].url));
        let mut url_refs = vec![0u32; n];
        for (rank, &doc) in order.iter().enumerate() {
            url_refs[doc as usize] = rank as u32;
        }
        let mut url_data = Vec::new();
        let mut url_group_offs = Vec::with_capacity(n.div_ceil(URL_GROUP));
        for group in order.chunks(URL_GROUP) {
            url_group_offs.push(url_data.len() as u32);
            let mut prev: &str = "";
            for (j, &doc) in group.iter().enumerate() {
                let url = metas[doc as usize].url.as_str();
                if j == 0 {
                    write_varint(&mut url_data, url.len() as u32);
                    url_data.extend_from_slice(url.as_bytes());
                } else {
                    let lcp = common_prefix(prev, url);
                    write_varint(&mut url_data, lcp as u32);
                    write_varint(&mut url_data, (url.len() - lcp) as u32);
                    url_data.extend_from_slice(&url.as_bytes()[lcp..]);
                }
                prev = url;
            }
        }

        CompactDocs {
            pages: metas.iter().map(|m| m.page).collect(),
            host_ids: metas.iter().map(|m| m.host_id).collect(),
            authorities: metas.iter().map(|m| m.authority).collect(),
            ages: metas.iter().map(|m| m.age_days).collect(),
            source_types: metas.iter().map(|m| m.source_type).collect(),
            token_lens: metas.iter().map(|m| m.token_len).collect(),
            title_lens: metas.iter().map(|m| m.title_len).collect(),
            text,
            text_offs,
            hosts,
            url_data,
            url_group_offs,
            url_refs,
            raw_bytes,
        }
    }

    /// Number of documents.
    #[inline]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total token count of one document (hot path for impact builds).
    #[inline]
    pub fn token_len(&self, doc: DocNum) -> u32 {
        self.token_lens[doc as usize]
    }

    /// Re-materializes one document's URL from the front-coded
    /// dictionary: decode the group head, then apply `(lcp, suffix)`
    /// edits up to the document's rank within its group.
    pub fn url(&self, doc: DocNum) -> String {
        let rank = self.url_refs[doc as usize] as usize;
        let group = rank / URL_GROUP;
        let within = rank % URL_GROUP;
        let data = &self.url_data[self.url_group_offs[group] as usize..];
        let mut pos = 0usize;
        let head_len = read_varint(data, &mut pos) as usize;
        let mut url = String::from(
            std::str::from_utf8(&data[pos..pos + head_len]).expect("url bytes are UTF-8"),
        );
        pos += head_len;
        for _ in 0..within {
            let lcp = read_varint(data, &mut pos) as usize;
            let suffix_len = read_varint(data, &mut pos) as usize;
            url.truncate(lcp);
            url.push_str(
                std::str::from_utf8(&data[pos..pos + suffix_len]).expect("url bytes are UTF-8"),
            );
            pos += suffix_len;
        }
        url
    }

    /// The full borrowed view of one document (URL is owned — see
    /// [`DocFields`]).
    pub fn fields(&self, doc: DocNum) -> DocFields<'_> {
        let i = doc as usize;
        let t0 = self.text_offs[2 * i] as usize;
        let t1 = self.text_offs[2 * i + 1] as usize;
        let t2 = self.text_offs[2 * i + 2] as usize;
        DocFields {
            page: self.pages[i],
            url: Cow::Owned(self.url(doc)),
            host: &self.hosts[self.host_ids[i] as usize],
            host_id: self.host_ids[i],
            authority: self.authorities[i],
            age_days: self.ages[i],
            source_type: self.source_types[i],
            token_len: self.token_lens[i],
            title_len: self.title_lens[i],
            title: &self.text[t0..t1],
            body: &self.text[t1..t2],
        }
    }

    /// Per-document `(authority, age_days)` pairs for static-score
    /// builds, without materializing full views.
    #[inline]
    pub fn static_inputs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.authorities
            .iter()
            .copied()
            .zip(self.ages.iter().copied())
    }

    /// Estimated heap bytes held by the compact layout as stored.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let hosts: u64 = self
            .hosts
            .iter()
            .map(|h| (h.len() + size_of::<String>()) as u64)
            .sum();
        (self.pages.len() * size_of::<PageId>()
            + self.host_ids.len() * 4
            + self.authorities.len() * 8
            + self.ages.len() * 8
            + self.source_types.len() * size_of::<SourceType>()
            + self.token_lens.len() * 4
            + self.title_lens.len() * 4
            + self.text.len()
            + self.text_offs.len() * 4
            + self.url_data.len()
            + self.url_group_offs.len() * 4
            + self.url_refs.len() * 4) as u64
            + hosts
    }

    /// What the raw `DocMeta` layout cost for the same documents.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }
}

/// Estimated heap bytes of a raw `Vec<DocMeta>` layout: the struct array
/// plus every owned string's payload. Shared by the raw index's stats
/// and [`CompactDocs`]'s conversion-time capture so both sides of the
/// compression ratio use the same formula.
pub fn raw_doc_meta_bytes(metas: &[DocMeta]) -> u64 {
    metas.len() as u64 * std::mem::size_of::<DocMeta>() as u64
        + metas
            .iter()
            .map(|d| (d.url.len() + d.host.len() + d.title.len() + d.body.len()) as u64)
            .sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(i: u32, url: &str, host: &str, host_id: u32) -> DocMeta {
        DocMeta {
            page: PageId(i),
            url: url.to_string(),
            host: host.to_string(),
            host_id,
            authority: 0.25 + f64::from(i) * 0.01,
            age_days: f64::from(i) * 3.0,
            source_type: SourceType::Earned,
            token_len: 100 + i,
            title_len: 5 + i,
            body: format!("body text number {i} with battery life details"),
            title: format!("Title {i}"),
        }
    }

    fn sample(n: u32) -> (Vec<DocMeta>, Vec<String>) {
        let hosts = vec!["a.example.com".to_string(), "b.example.org".to_string()];
        let metas: Vec<DocMeta> = (0..n)
            .map(|i| {
                let h = (i % 2) as usize;
                meta(
                    i,
                    &format!("https://{}/articles/{:04}/page", hosts[h], i * 7 % 97),
                    &hosts[h],
                    h as u32,
                )
            })
            .collect();
        (metas, hosts)
    }

    #[test]
    fn fields_match_source_metas() {
        let (metas, hosts) = sample(50);
        let compact = CompactDocs::from_metas(&metas, hosts);
        assert_eq!(compact.len(), metas.len());
        for (i, m) in metas.iter().enumerate() {
            let f = compact.fields(i as DocNum);
            assert_eq!(f.page, m.page);
            assert_eq!(f.url.as_ref(), m.url);
            assert_eq!(f.host, m.host);
            assert_eq!(f.host_id, m.host_id);
            assert_eq!(f.authority.to_bits(), m.authority.to_bits());
            assert_eq!(f.age_days.to_bits(), m.age_days.to_bits());
            assert_eq!(f.token_len, m.token_len);
            assert_eq!(f.title_len, m.title_len);
            assert_eq!(f.title, m.title);
            assert_eq!(f.body, m.body);
            assert_eq!(compact.token_len(i as DocNum), m.token_len);
        }
    }

    #[test]
    fn url_group_boundaries_roundtrip() {
        // Exercise group heads, interiors and a partial final group.
        let (metas, hosts) = sample(URL_GROUP as u32 * 3 + 5);
        let compact = CompactDocs::from_metas(&metas, hosts);
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(compact.url(i as DocNum), m.url, "doc {i}");
        }
    }

    #[test]
    fn compact_layout_is_smaller_than_raw() {
        let (metas, hosts) = sample(400);
        let compact = CompactDocs::from_metas(&metas, hosts);
        assert_eq!(compact.raw_bytes(), raw_doc_meta_bytes(&metas));
        assert!(
            compact.heap_bytes() < compact.raw_bytes(),
            "compact {} >= raw {}",
            compact.heap_bytes(),
            compact.raw_bytes()
        );
    }

    #[test]
    fn common_prefix_respects_char_boundaries() {
        assert_eq!(common_prefix("abc", "abd"), 2);
        assert_eq!(common_prefix("", "x"), 0);
        // 'é' is two bytes; identical first byte must not split it.
        assert_eq!(common_prefix("é", "ü"), 0);
        assert_eq!(common_prefix("éa", "éb"), 2);
    }
}
