//! Block codecs for the compressed postings read path.
//!
//! The immutable index stores each term's postings in blocks of
//! [`crate::BLOCK_LEN`] entries, aligned with the block-max summary
//! table so the pruning kernel can skip and decode at block
//! granularity. One encoded block is a single byte stream:
//!
//! ```text
//! [varint first_doc] [u8 width] [bit-packed (count-1) × (delta-1)]
//! [u8 tw] [u8 bw] [bit-packed count × title_tf] [bit-packed count × body_tf]
//! ```
//!
//! Document ids are strictly increasing inside a list, so consecutive
//! gaps are ≥ 1 and the codec stores `delta - 1`; a run of adjacent
//! documents packs at width 0 (no payload bytes at all). All widths are
//! fixed per block (the bit width of the largest value), LSB-first.
//! The document section's byte length is computable from its header
//! alone (`varint` length + 1 + ceil((count-1)·width / 8)), so term
//! frequencies can be located without decoding the ids and vice versa.
//!
//! Position streams are encoded per posting as varints (first position
//! raw, then gaps, which are ≥ 1 inside one posting) and addressed by a
//! per-posting byte-offset array; decoding walks the byte range, so no
//! explicit count is stored.
//!
//! Everything here is lossless: `encode → decode` reproduces the exact
//! `u32` sequences, which is what keeps compressed-path SERPs
//! byte-identical to the raw layout.

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, low
/// bits first, high bit = continuation).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decodes one LEB128 varint from `data` starting at `*pos`, advancing
/// `*pos` past it.
#[inline]
pub fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Encoded byte length of `v` as an LEB128 varint.
#[inline]
pub fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Minimal bit width (0..=32) that can represent `v`.
#[inline]
pub fn bits_for(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Appends `values` to `out` bit-packed at fixed `width` bits each,
/// LSB-first, padded with zero bits to the next byte boundary. A width
/// of 0 writes nothing.
pub fn pack_bits(out: &mut Vec<u8>, values: &[u32], width: u8) {
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut used = 0u32;
    for &v in values {
        debug_assert!(width == 32 || v < (1u32 << width), "value exceeds width");
        acc |= u64::from(v) << used;
        used += u32::from(width);
        while used >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            used -= 8;
        }
    }
    if used > 0 {
        out.push(acc as u8);
    }
}

/// Decodes `out.len()` values of fixed `width` bits each from the
/// start of `data` (LSB-first), the inverse of [`pack_bits`]. A width
/// of 0 fills `out` with zeros. Returns the number of payload bytes
/// consumed: `ceil(out.len() · width / 8)`.
pub fn unpack_bits(data: &[u8], width: u8, out: &mut [u32]) -> usize {
    if width == 0 {
        out.fill(0);
        return 0;
    }
    let mask = if width == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << width) - 1
    };
    let mut acc = 0u64;
    let mut avail = 0u32;
    let mut byte = 0usize;
    for slot in out.iter_mut() {
        while avail < u32::from(width) {
            acc |= u64::from(data[byte]) << avail;
            byte += 1;
            avail += 8;
        }
        *slot = (acc & mask) as u32;
        acc >>= width;
        avail -= u32::from(width);
    }
    byte
}

/// Number of payload bytes [`pack_bits`] emits for `count` values at
/// `width` bits.
#[inline]
pub fn packed_len(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(8)
}

/// Encodes one block of `docs.len()` postings (1..=[`crate::BLOCK_LEN`])
/// into `out` in the layout described at module level. `docs` must be
/// strictly increasing; the three slices must be the same length.
pub fn encode_block(out: &mut Vec<u8>, docs: &[u32], title_tfs: &[u32], body_tfs: &[u32]) {
    let count = docs.len();
    debug_assert!(count >= 1);
    debug_assert_eq!(count, title_tfs.len());
    debug_assert_eq!(count, body_tfs.len());

    write_varint(out, docs[0]);
    let mut deltas = [0u32; crate::BLOCK_LEN];
    let mut max_delta = 0u32;
    for i in 1..count {
        debug_assert!(docs[i] > docs[i - 1], "doc ids must be strictly increasing");
        let d = docs[i] - docs[i - 1] - 1;
        deltas[i - 1] = d;
        max_delta = max_delta.max(d);
    }
    let width = bits_for(max_delta);
    out.push(width);
    pack_bits(out, &deltas[..count - 1], width);

    let tw = bits_for(title_tfs.iter().copied().max().unwrap_or(0));
    let bw = bits_for(body_tfs.iter().copied().max().unwrap_or(0));
    out.push(tw);
    out.push(bw);
    pack_bits(out, title_tfs, tw);
    pack_bits(out, body_tfs, bw);
}

/// Decodes the document ids of one encoded block into `out[..count]`.
/// Returns the byte length of the document section (header + packed
/// deltas), i.e. the offset at which the term-frequency section starts.
pub fn decode_block_docs(data: &[u8], count: usize, out: &mut [u32]) -> usize {
    debug_assert!(count >= 1 && count <= out.len());
    let mut pos = 0usize;
    let first = read_varint(data, &mut pos);
    let width = data[pos];
    pos += 1;
    out[0] = first;
    if count > 1 {
        pos += unpack_bits(&data[pos..], width, &mut out[1..count]);
        let mut prev = first;
        for slot in &mut out[1..count] {
            prev = prev + *slot + 1;
            *slot = prev;
        }
    }
    pos
}

/// Byte length of the document section of an encoded block without
/// decoding the ids, from the header alone.
pub fn doc_section_len(data: &[u8], count: usize) -> usize {
    let mut pos = 0usize;
    let first = read_varint(data, &mut pos);
    let _ = first;
    let width = data[pos];
    pos + 1 + packed_len(count - 1, width)
}

/// Decodes the term-frequency section of one encoded block, given the
/// document-section length returned by [`decode_block_docs`] or
/// [`doc_section_len`]. Fills `titles[..count]` and `bodies[..count]`.
pub fn decode_block_tfs(
    data: &[u8],
    doc_section: usize,
    count: usize,
    titles: &mut [u32],
    bodies: &mut [u32],
) {
    let mut pos = doc_section;
    let tw = data[pos];
    let bw = data[pos + 1];
    pos += 2;
    pos += unpack_bits(&data[pos..], tw, &mut titles[..count]);
    unpack_bits(&data[pos..], bw, &mut bodies[..count]);
}

/// Appends one posting's position list to `out` (first position raw,
/// then gaps as varints; positions are strictly increasing inside one
/// posting so gaps are ≥ 1 and stored as `gap - 1`).
pub fn encode_positions(out: &mut Vec<u8>, positions: &[u32]) {
    let mut prev = None;
    for &p in positions {
        match prev {
            None => write_varint(out, p),
            Some(q) => {
                debug_assert!(p > q, "positions must be strictly increasing");
                write_varint(out, p - q - 1);
            }
        }
        prev = Some(p);
    }
}

/// Decodes a position byte range produced by [`encode_positions`],
/// invoking `f` for each position in order. The range length implies
/// the count; no terminator is stored.
#[inline]
pub fn decode_positions(data: &[u8], mut f: impl FnMut(u32)) {
    let mut pos = 0usize;
    if pos < data.len() {
        let mut cur = read_varint(data, &mut pos);
        f(cur);
        while pos < data.len() {
            cur = cur + read_varint(data, &mut pos) + 1;
            f(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_block(docs: &[u32], tts: &[u32], bts: &[u32]) {
        let mut buf = Vec::new();
        encode_block(&mut buf, docs, tts, bts);
        let mut d = [0u32; crate::BLOCK_LEN];
        let mut t = [0u32; crate::BLOCK_LEN];
        let mut b = [0u32; crate::BLOCK_LEN];
        let n = docs.len();
        let doc_sec = decode_block_docs(&buf, n, &mut d);
        assert_eq!(doc_sec, doc_section_len(&buf, n));
        decode_block_tfs(&buf, doc_sec, n, &mut t, &mut b);
        assert_eq!(&d[..n], docs);
        assert_eq!(&t[..n], tts);
        assert_eq!(&b[..n], bts);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u32,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v));
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn pack_bits_roundtrip_all_widths() {
        for width in 0..=32u8 {
            let mask = if width == 0 {
                0
            } else if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let values: Vec<u32> = (0..67u32)
                .map(|i| i.wrapping_mul(0x9e37_79b9) & mask)
                .collect();
            let mut out = Vec::new();
            pack_bits(&mut out, &values, width);
            assert_eq!(out.len(), packed_len(values.len(), width));
            let mut back = vec![0u32; values.len()];
            let used = unpack_bits(&out, width, &mut back);
            assert_eq!(used, out.len());
            assert_eq!(back, values);
        }
    }

    #[test]
    fn block_roundtrip_single_posting_doc_zero() {
        roundtrip_block(&[0], &[3], &[0]);
    }

    #[test]
    fn block_roundtrip_consecutive_docs_pack_to_width_zero() {
        let docs: Vec<u32> = (100..164).collect();
        let tts = vec![0u32; 64];
        let bts = vec![1u32; 64];
        let mut buf = Vec::new();
        encode_block(&mut buf, &docs, &tts, &bts);
        // first_doc varint + width byte (0 ⇒ no payload) + tw/bw
        // bytes + 0-bit titles + 8 bytes of 1-bit bodies.
        assert_eq!(buf.len(), varint_len(docs[0]) + 1 + 2 + 8);
        roundtrip_block(&docs, &tts, &bts);
    }

    #[test]
    fn block_roundtrip_extreme_gaps() {
        roundtrip_block(&[0, u32::MAX - 1, u32::MAX], &[1, 2, 3], &[9, 0, 1]);
        roundtrip_block(&[u32::MAX], &[0], &[0]);
    }

    #[test]
    fn positions_roundtrip() {
        for positions in [
            vec![],
            vec![0u32],
            vec![5],
            vec![0, 1, 2, 3],
            vec![0, 7, 300, 301, 65536],
            vec![u32::MAX - 2, u32::MAX],
        ] {
            let mut out = Vec::new();
            encode_positions(&mut out, &positions);
            let mut back = Vec::new();
            decode_positions(&out, |p| back.push(p));
            assert_eq!(back, positions);
        }
    }
}
