//! Document-partitioned index sharding.
//!
//! A [`ShardedIndex`] splits an existing [`SearchIndex`] into `S`
//! contiguous document-number ranges. Each shard owns, per term, the
//! `(start, end)` subrange of the *global* posting list that falls into
//! its document range, plus shard-local block-max summaries rebuilt
//! over that subrange (so block skipping and block bounds stay tight
//! inside the shard — a global block straddling a shard boundary would
//! otherwise leak postings from a neighbor). Collection statistics
//! (document count, document frequency, average length) remain
//! *global*: a document's score must not depend on which shard scored
//! it, and that is precisely what makes the merged SERP byte-identical
//! to the single-shard kernel (see DESIGN.md §3 "Sharded retrieval").
//!
//! Per-shard pruning [`BoundTable`]s are derived lazily per BM25
//! parameterization and cached, mirroring [`SearchIndex::bound_table`];
//! shard-local bounds are at most the global ones, so per-shard pruning
//! is at least as tight.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::bm25::{idf, term_score_bound, Bm25Params};
use crate::index::{BoundKey, BoundTable, SearchIndex};
use crate::postings::{BlockSummary, DocNum, TermId, BLOCK_LEN};

/// One shard's view of the index: a contiguous document range, per-term
/// posting-list subranges, and shard-local block-max summaries.
#[derive(Debug)]
pub(crate) struct IndexShard {
    /// First document number owned by this shard (inclusive).
    pub(crate) doc_begin: DocNum,
    /// One-past-the-last document number owned by this shard.
    pub(crate) doc_end: DocNum,
    /// Per-term `(start, end)` posting-index subrange of the global
    /// list that falls inside `[doc_begin, doc_end)`.
    pub(crate) ranges: Vec<(u32, u32)>,
    /// Per-term block-max summaries over the shard's subrange, one
    /// [`BlockSummary`] per [`BLOCK_LEN`] postings (indices relative to
    /// the subrange).
    pub(crate) blocks: Vec<Vec<BlockSummary>>,
}

/// A [`SearchIndex`] partitioned into contiguous document-range shards
/// for parallel per-shard top-k retrieval with an exact merge.
#[derive(Debug)]
pub struct ShardedIndex {
    index: Arc<SearchIndex>,
    shards: Vec<IndexShard>,
    // Lazily built per-shard pruning bound tables, one vector (indexed
    // by shard) per distinct BM25 triple — same idiom as the underlying
    // index's bound cache.
    bound_cache: RwLock<Vec<(BoundKey, Arc<Vec<BoundTable>>)>>,
}

impl ShardedIndex {
    /// Partitions `index` into `shard_count` near-equal contiguous
    /// document ranges (`shard_count` is clamped to at least 1).
    /// Shard counts above the document count produce empty shards,
    /// which evaluate to empty candidate heaps and merge away.
    pub fn build(index: Arc<SearchIndex>, shard_count: usize) -> ShardedIndex {
        let shard_count = shard_count.max(1);
        let store = index.postings();
        let doc_count = store.doc_count() as usize;
        let vocab = store.vocabulary_size();
        let mut shards = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let doc_begin = (s * doc_count / shard_count) as DocNum;
            let doc_end = ((s + 1) * doc_count / shard_count) as DocNum;
            let mut ranges = Vec::with_capacity(vocab);
            let mut blocks = Vec::with_capacity(vocab);
            for term in 0..vocab as TermId {
                // Mode-agnostic subrange resolution: `lower_bound` runs
                // on the raw array or decodes at most one block per
                // probe on the compressed layout.
                let start = store.lower_bound(term, doc_begin);
                let end = store.lower_bound(term, doc_end);
                ranges.push((start, end));
                let sub_len = (end - start) as usize;
                let mut summaries = Vec::with_capacity(sub_len.div_ceil(BLOCK_LEN));
                let fresh = BlockSummary {
                    last_doc: 0,
                    max_title_tf: 0,
                    max_body_tf: 0,
                    min_doc_len: u32::MAX,
                };
                let mut summary = fresh;
                let mut in_block = 0usize;
                store.for_each_posting_range(term, start, end, &mut |_, doc, title_tf, body_tf| {
                    summary.last_doc = doc;
                    summary.max_title_tf = summary.max_title_tf.max(title_tf);
                    summary.max_body_tf = summary.max_body_tf.max(body_tf);
                    summary.min_doc_len = summary.min_doc_len.min(index.token_len(doc));
                    in_block += 1;
                    if in_block == BLOCK_LEN {
                        summaries.push(summary);
                        summary = fresh;
                        in_block = 0;
                    }
                });
                if in_block > 0 {
                    summaries.push(summary);
                }
                blocks.push(summaries);
            }
            shards.push(IndexShard {
                doc_begin,
                doc_end,
                ranges,
                blocks,
            });
        }
        ShardedIndex {
            index,
            shards,
            bound_cache: RwLock::new(Vec::new()),
        }
    }

    /// The underlying (global) index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// Clones the shared index handle.
    pub fn index_handle(&self) -> Arc<SearchIndex> {
        Arc::clone(&self.index)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard descriptors, for the kernel.
    pub(crate) fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// The contiguous document range of each shard, `(begin, end)`
    /// with `end` exclusive (exposed for tests and reporting).
    pub fn doc_ranges(&self) -> Vec<(DocNum, DocNum)> {
        self.shards
            .iter()
            .map(|s| (s.doc_begin, s.doc_end))
            .collect()
    }

    /// Per-shard pruning bound tables for one BM25 parameterization,
    /// computed over each shard's local block summaries (with *global*
    /// collection statistics) and cached by the exact parameter bits.
    pub fn bound_tables(&self, params: &Bm25Params) -> Arc<Vec<BoundTable>> {
        let key = BoundKey::new(params);
        {
            let cache = self.bound_cache.read();
            if let Some((_, tables)) = cache.iter().find(|(k, _)| *k == key) {
                return Arc::clone(tables);
            }
        }
        let store = self.index.postings();
        let doc_count = store.doc_count();
        let avg_len = store.avg_doc_len();
        let vocab = store.vocabulary_size();
        let tables: Vec<BoundTable> = self
            .shards
            .iter()
            .map(|shard| {
                let mut list_ub = Vec::with_capacity(vocab);
                let mut block_ub = Vec::with_capacity(vocab);
                for term in 0..vocab as TermId {
                    let term_idf = idf(doc_count, store.doc_freq_by_id(term));
                    let ubs: Vec<f64> = shard.blocks[term as usize]
                        .iter()
                        .map(|b| {
                            term_score_bound(
                                params,
                                term_idf,
                                b.max_title_tf,
                                b.max_body_tf,
                                b.min_doc_len,
                                avg_len,
                            )
                        })
                        .collect();
                    list_ub.push(ubs.iter().fold(0.0_f64, |m, &u| m.max(u)));
                    block_ub.push(ubs);
                }
                BoundTable { list_ub, block_ub }
            })
            .collect();
        let tables = Arc::new(tables);
        let mut cache = self.bound_cache.write();
        if let Some((_, existing)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(existing);
        }
        cache.push((key, Arc::clone(&tables)));
        tables
    }

    /// Per-shard postings statistics (documents, postings, block-max
    /// entries per shard) — the partition-balance report the bench
    /// prints alongside the global [`crate::IndexStats`].
    pub fn stats(&self) -> ShardedIndexStats {
        ShardedIndexStats {
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    doc_begin: s.doc_begin,
                    doc_end: s.doc_end,
                    postings: s.ranges.iter().map(|&(a, b)| u64::from(b - a)).sum(),
                    block_entries: s.blocks.iter().map(|b| b.len() as u64).sum(),
                })
                .collect(),
        }
    }
}

/// Postings statistics of one shard (see [`ShardedIndex::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// First document number owned by the shard (inclusive).
    pub doc_begin: DocNum,
    /// One-past-the-last document number owned by the shard.
    pub doc_end: DocNum,
    /// Postings falling inside the shard's document range.
    pub postings: u64,
    /// Shard-local block-max entries.
    pub block_entries: u64,
}

impl ShardStats {
    /// Documents owned by the shard.
    pub fn docs(&self) -> u32 {
        self.doc_end - self.doc_begin
    }
}

/// Per-shard statistics report (see [`ShardedIndex::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedIndexStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl fmt::Display for ShardedIndexStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "shards: {}", self.shards.len())?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "  shard {i}: docs [{}, {}) ({} docs)  {} postings  {} block entries",
                s.doc_begin,
                s.doc_end,
                s.docs(),
                s.postings,
                s.block_entries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::term_score_idf;
    use shift_corpus::{World, WorldConfig};

    fn sharded(shards: usize) -> ShardedIndex {
        let world = World::generate(&WorldConfig::small(), 7);
        ShardedIndex::build(Arc::new(SearchIndex::build(&world)), shards)
    }

    #[test]
    fn doc_ranges_partition_the_collection() {
        for count in [1usize, 2, 3, 7, 16] {
            let s = sharded(count);
            let ranges = s.doc_ranges();
            assert_eq!(ranges.len(), count);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(
                ranges[count - 1].1,
                s.index().postings().doc_count(),
                "last shard must end at doc_count"
            );
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "ranges must be contiguous");
            }
        }
    }

    #[test]
    fn term_ranges_cover_every_posting_exactly_once() {
        let s = sharded(3);
        let store = s.index().postings();
        for term in 0..store.vocabulary_size() as TermId {
            let list = store.postings_by_id(term);
            let mut covered = 0usize;
            for shard in s.shards() {
                let (a, b) = shard.ranges[term as usize];
                assert_eq!(a as usize, covered, "subranges must be contiguous");
                covered = b as usize;
                for p in &list[a as usize..b as usize] {
                    assert!(p.doc >= shard.doc_begin && p.doc < shard.doc_end);
                }
            }
            assert_eq!(covered, list.len(), "term {term} postings not covered");
        }
    }

    #[test]
    fn shard_blocks_summarize_their_subranges() {
        let s = sharded(3);
        let store = s.index().postings();
        for shard in s.shards() {
            for term in 0..store.vocabulary_size() as TermId {
                let (a, b) = shard.ranges[term as usize];
                let sub = &store.postings_by_id(term)[a as usize..b as usize];
                let blocks = &shard.blocks[term as usize];
                assert_eq!(blocks.len(), sub.len().div_ceil(BLOCK_LEN));
                for (i, blk) in blocks.iter().enumerate() {
                    let chunk = &sub[i * BLOCK_LEN..((i + 1) * BLOCK_LEN).min(sub.len())];
                    assert_eq!(blk.last_doc, chunk.last().unwrap().doc);
                    assert_eq!(
                        blk.max_title_tf,
                        chunk.iter().map(|p| p.title_tf).max().unwrap()
                    );
                    assert_eq!(
                        blk.max_body_tf,
                        chunk.iter().map(|p| p.body_tf).max().unwrap()
                    );
                    let min_len = chunk
                        .iter()
                        .map(|p| s.index().doc(p.doc).token_len)
                        .min()
                        .unwrap();
                    assert_eq!(blk.min_doc_len, min_len);
                }
            }
        }
    }

    #[test]
    fn shard_block_bounds_dominate_their_postings() {
        // Admissibility of the per-shard tables: every posting's true
        // term score sits at or below its shard block's bound, and no
        // block bound exceeds its list bound. (Shard bounds need *not*
        // stay below the global ones — a shard block straddling two
        // global blocks can pair a higher max-tf with a lower
        // min-doc-len — and pruning never compares across tables.)
        let s = sharded(4);
        let params = Bm25Params::default();
        let per_shard = s.bound_tables(&params);
        assert_eq!(per_shard.len(), 4);
        let store = s.index().postings();
        let doc_count = store.doc_count();
        let avg_len = store.avg_doc_len();
        for (shard, table) in s.shards().iter().zip(per_shard.iter()) {
            for term in 0..store.vocabulary_size() as TermId {
                let term_idf = idf(doc_count, store.doc_freq_by_id(term));
                let (a, b) = shard.ranges[term as usize];
                let sub = &store.postings_by_id(term)[a as usize..b as usize];
                for (i, p) in sub.iter().enumerate() {
                    let score = term_score_idf(
                        &params,
                        p,
                        term_idf,
                        f64::from(s.index().doc(p.doc).token_len),
                        avg_len,
                    );
                    let bound = table.block_ubs(term)[i / BLOCK_LEN];
                    assert!(
                        score <= bound * (1.0 + 1e-12),
                        "term {term} posting {i}: score {score} > block bound {bound}"
                    );
                    assert!(bound <= table.list_ub(term) * (1.0 + 1e-12));
                }
            }
        }
        // Same params hit the cache.
        let again = s.bound_tables(&params);
        assert!(Arc::ptr_eq(&per_shard, &again));
    }

    #[test]
    fn more_shards_than_documents_yields_empty_shards() {
        let world = World::generate(&WorldConfig::small(), 7);
        let index = Arc::new(SearchIndex::build(&world));
        let docs = index.postings().doc_count() as usize;
        let s = ShardedIndex::build(index, docs + 5);
        assert_eq!(s.shard_count(), docs + 5);
        let stats = s.stats();
        assert!(stats.shards.iter().any(|sh| sh.docs() == 0));
        let total: u64 = stats.shards.iter().map(|sh| sh.postings).sum();
        assert_eq!(total, s.index().postings().stats().postings);
    }

    #[test]
    fn stats_render_and_balance() {
        let s = sharded(4);
        let stats = s.stats();
        let rendered = format!("{stats}");
        assert!(rendered.contains("shards: 4"));
        let docs: Vec<u32> = stats.shards.iter().map(|sh| sh.docs()).collect();
        let (min, max) = (*docs.iter().min().unwrap(), *docs.iter().max().unwrap());
        assert!(max - min <= 1, "near-equal partition: {docs:?}");
    }
}
