//! Differential gate for batched execution: [`BatchExecutor`] output
//! must be **byte-identical** to per-query execution — across batch
//! sizes (1, 7, 64, 1000), shuffled submission orders, duplicate
//! queries, mixed ranking parameterizations / k / evaluation modes,
//! worker counts, grouping seeds, sharded engines, and live snapshots
//! at arbitrary timeline cuts. Scores compare at the bit level.
//!
//! (The companion dedup property — N concurrent identical cache misses
//! run the kernel exactly once and every waiter receives identical
//! bytes — lives with the single-flight layer in `shift-engines`,
//! which owns the SERP cache the flights sit under.)

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use shift_corpus::{EventKind, Timeline, TimelineConfig, World, WorldConfig};
use shift_search::live::{LiveDoc, LiveIndex, LiveIndexConfig, LiveSearcher};
use shift_search::{
    BatchExecutor, EvalMode, QueryScratch, RankingParams, SearchEngine, Serp, ShardedIndex,
};

/// Engines over two independent worlds × the two study
/// parameterizations, plus the disabled-features and tie-dense stress
/// parameterizations from the kernel differential suite.
fn engines() -> &'static Vec<SearchEngine> {
    static ENGINES: OnceLock<Vec<SearchEngine>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let mut engines = Vec::new();
        for seed in [4040u64, 91] {
            let world = World::generate(&WorldConfig::small(), seed);
            let google = SearchEngine::build(&world, RankingParams::google());
            let ai = SearchEngine::with_index(google.index_handle(), RankingParams::ai_retrieval());
            engines.push(google);
            engines.push(ai);
        }
        let world = World::generate(&WorldConfig::small(), 17);
        let bare = RankingParams {
            proximity_bonus: 0.0,
            coordination: 0.0,
            max_per_host: 0,
            ..RankingParams::google()
        };
        engines.push(SearchEngine::build(&world, bare));
        let world = World::generate(&WorldConfig::small(), 29);
        let mut ties = RankingParams {
            proximity_bonus: 0.0,
            coordination: 0.0,
            max_per_host: 0,
            authority_weight: 0.0,
            freshness_weight: 0.0,
            ..RankingParams::google()
        };
        ties.bm25.b = 0.0;
        engines.push(SearchEngine::build(&world, ties));
        engines
    })
}

/// Sharded views over engine 0's index: even, odd, and zero-match-shard
/// partitions.
fn sharded_engines() -> &'static Vec<SearchEngine> {
    static SHARDED: OnceLock<Vec<SearchEngine>> = OnceLock::new();
    SHARDED.get_or_init(|| {
        [2usize, 3, 7]
            .into_iter()
            .map(|count| {
                let view = ShardedIndex::build(engines()[0].index_handle(), count);
                SearchEngine::with_sharded_index(Arc::new(view), engines()[0].params().clone())
            })
            .collect()
    })
}

/// Full structural equality with bit-exact scores.
fn assert_serp_identical(batched: &Serp, per_query: &Serp) {
    assert_eq!(batched.query, per_query.query);
    assert_eq!(
        batched.results.len(),
        per_query.results.len(),
        "result counts differ for {:?}",
        batched.query
    );
    for (i, (a, b)) in batched.results.iter().zip(&per_query.results).enumerate() {
        assert_eq!(a.url, b.url, "url diverges at rank {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score diverges at rank {i}: {} vs {}",
            a.score,
            b.score
        );
        assert_eq!(a.page, b.page, "page diverges at rank {i}");
        assert_eq!(a.host, b.host, "host diverges at rank {i}");
        assert_eq!(a.title, b.title, "title diverges at rank {i}");
        assert_eq!(a.snippet, b.snippet, "snippet diverges at rank {i}");
        assert_eq!(a.source_type, b.source_type);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
    }
}

/// The core property: the batched SERP vector equals running every
/// query alone, in submission order, one fresh scratch per query.
fn assert_batch_matches_per_query(
    engine: &SearchEngine,
    queries: &[String],
    k: usize,
    mode: EvalMode,
) {
    let batched = engine.search_batch(queries, k, mode);
    assert_eq!(batched.len(), queries.len());
    for (q, b) in queries.iter().zip(&batched) {
        let per = engine.search_with_mode(&mut QueryScratch::new(), q, k, mode);
        assert_serp_identical(b, &per);
    }
}

/// Query strings mixing realistic templates with junk (same family as
/// the kernel differential suite), so batches hold everything from
/// posting-dense queries to stopword-only and unknown-term ones.
fn query() -> impl Strategy<Value = String> {
    prop_oneof![
        (
            prop_oneof![
                Just("best"),
                Just("top 10"),
                Just("most reliable"),
                Just("buy"),
                Just("review"),
            ],
            prop_oneof![
                Just("smartphones"),
                Just("laptops"),
                Just("SUVs"),
                Just("hotels"),
                Just("credit cards"),
                Just("espresso machines"),
                Just("smartwatches battery"),
            ],
            prop_oneof![
                Just(""),
                Just(" 2025"),
                Just(" for students"),
                Just(" battery battery"), // duplicate query terms
            ],
        )
            .prop_map(|(a, b, c)| format!("{a} {b}{c}")),
        "\\PC{0,32}",
    ]
}

/// Deterministic Fisher–Yates driven by a proptest-chosen seed: the
/// suite controls submission order without needing a shuffle strategy.
fn shuffle(queries: &mut [String], mut seed: u64) {
    for i in (1..queries.len()).rev() {
        // SplitMix64 step.
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        queries.swap(i, (z as usize) % (i + 1));
    }
}

/// The canonical batch-size ladder from the issue: a singleton, an odd
/// partial group, a typical micro-batch, and a size that dwarfs the
/// distinct-query pool (forcing heavy in-batch dedup).
#[test]
fn batch_sizes_1_7_64_1000_match_per_query() {
    let pool = [
        "best laptops for students",
        "best smartphones camera battery",
        "top 10 hotels 2025",
        "review espresso machines",
        "most reliable SUVs",
        "buy credit cards",
        "the of and",            // analyzes to nothing
        "xylophonic quuxations", // unknown terms
        "",
    ];
    for engine in [&engines()[0], &engines()[1]] {
        for size in [1usize, 7, 64, 1000] {
            let queries: Vec<String> = (0..size)
                .map(|i| {
                    // Cycle the pool, with a varying suffix on every
                    // third pick so batches mix exact duplicates with
                    // distinct analyzed term lists.
                    let base = pool[i % pool.len()];
                    if i % 3 == 0 {
                        format!("{base} {}", 2020 + (i % 7))
                    } else {
                        base.to_string()
                    }
                })
                .collect();
            assert_batch_matches_per_query(engine, &queries, 10, EvalMode::Pruned);
        }
    }
}

/// Worker counts and grouping seeds are scheduling knobs only: any
/// (workers, seed) pair must produce the same bytes as the default.
#[test]
fn worker_counts_and_seeds_are_invisible() {
    let queries: Vec<String> = (0..40)
        .map(|i| format!("best laptops pick {}", i % 11))
        .collect();
    let engine = &engines()[0];
    let baseline = engine.search_batch(&queries, 10, EvalMode::Pruned);
    for (workers, seed) in [(1usize, 0u64), (2, 1), (3, 0xDEAD_BEEF), (16, u64::MAX)] {
        let run = BatchExecutor::new()
            .with_workers(workers)
            .with_seed(seed)
            .run(engine, &queries, 10, EvalMode::Pruned);
        for (a, b) in run.iter().zip(&baseline) {
            assert_serp_identical(a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary batches over every engine, both evaluation modes and
    /// the full k range: batched output is byte-identical to per-query.
    #[test]
    fn batched_matches_per_query(
        queries in prop::collection::vec(query(), 1..24),
        k in 0usize..25,
        which in 0usize..6,
        pruned in prop_oneof![Just(true), Just(false)],
    ) {
        let mode = if pruned { EvalMode::Pruned } else { EvalMode::Exhaustive };
        assert_batch_matches_per_query(&engines()[which], &queries, k, mode);
    }

    /// Submission order is a free variable: results always come back in
    /// whatever order the queries were submitted, and reordering a
    /// batch reorders exactly the results.
    #[test]
    fn shuffled_submission_orders_match(
        mut queries in prop::collection::vec(query(), 2..16),
        order_seed in 0u64..u64::MAX,
        k in 1usize..15,
        which in 0usize..6,
    ) {
        let engine = &engines()[which];
        let before = engine.search_batch(&queries, k, EvalMode::Pruned);
        let paired: std::collections::HashMap<String, Serp> =
            queries.iter().cloned().zip(before).collect();
        shuffle(&mut queries, order_seed);
        let after = engine.search_batch(&queries, k, EvalMode::Pruned);
        for (q, serp) in queries.iter().zip(&after) {
            assert_serp_identical(serp, &paired[q]);
        }
    }

    /// Duplicate-heavy batches (many copies of few distinct queries,
    /// differing only in raw casing/echo) still emit one correct SERP
    /// per submission, each echoing its own raw text.
    #[test]
    fn duplicate_queries_each_get_their_own_echo(
        picks in prop::collection::vec(0usize..4, 3..20),
        k in 1usize..15,
        which in 0usize..6,
    ) {
        let distinct = ["best laptops", "top 10 hotels", "review", "the of and"];
        let queries: Vec<String> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                // Vary casing so raw strings differ while analyzed
                // term lists collide — the in-batch dedup path.
                if i % 2 == 0 {
                    distinct[p].to_uppercase()
                } else {
                    distinct[p].to_string()
                }
            })
            .collect();
        assert_batch_matches_per_query(&engines()[which], &queries, k, EvalMode::Pruned);
    }

    /// Sharded engines run the batch shard-per-worker (each worker owns
    /// one shard for the whole batch); the merged SERPs must match the
    /// per-query sharded path byte-for-byte — which the kernel suite
    /// already pins to the unsharded kernel and the oracle.
    #[test]
    fn sharded_batches_match_per_query(
        queries in prop::collection::vec(query(), 1..16),
        k in 0usize..25,
        sharded_ix in 0usize..3,
    ) {
        assert_batch_matches_per_query(&sharded_engines()[sharded_ix], &queries, k, EvalMode::Pruned);
    }
}

// ---------------------------------------------------------------------
// Live snapshots: batches against point-in-time cuts of a mutating
// index.
// ---------------------------------------------------------------------

fn base_world() -> World {
    World::generate(&WorldConfig::small(), 4040)
}

fn timeline() -> &'static Timeline {
    static TIMELINE: OnceLock<Timeline> = OnceLock::new();
    TIMELINE.get_or_init(|| Timeline::generate(&base_world(), &TimelineConfig::dense(), 5))
}

/// Snapshot searchers at a spread of timeline cuts (prime fractions so
/// cuts land at "random" event offsets, not round numbers), under both
/// study parameterizations.
fn live_searchers() -> &'static Vec<(usize, Vec<LiveSearcher>)> {
    static SEARCHERS: OnceLock<Vec<(usize, Vec<LiveSearcher>)>> = OnceLock::new();
    SEARCHERS.get_or_init(|| {
        let world = base_world();
        let n = timeline().len();
        [n / 7, n / 3, (5 * n) / 8, n]
            .into_iter()
            .map(|cut| {
                let mut index = LiveIndex::new(LiveIndexConfig::tiny(42));
                for event in &timeline().events()[..cut] {
                    match event.kind {
                        EventKind::Delete => {
                            index.delete(event.page.id);
                        }
                        EventKind::Publish | EventKind::Update => {
                            index.upsert(LiveDoc::from_page(&world, &event.page));
                        }
                    }
                }
                let snapshot = Arc::new(index.snapshot());
                let searchers = [RankingParams::google(), RankingParams::ai_retrieval()]
                    .into_iter()
                    .map(|p| LiveSearcher::new(Arc::clone(&snapshot), p))
                    .collect();
                (cut, searchers)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Live-snapshot batches at arbitrary cuts: the multi-segment
    /// batch path (per-segment term interning, grouped execution) is
    /// byte-identical to per-query snapshot search.
    #[test]
    fn live_snapshot_batches_match_per_query(
        queries in prop::collection::vec(query(), 1..12),
        k in 0usize..20,
        cut_ix in 0usize..4,
        params_ix in 0usize..2,
        pruned in prop_oneof![Just(true), Just(false)],
    ) {
        let mode = if pruned { EvalMode::Pruned } else { EvalMode::Exhaustive };
        let (cut, searchers) = &live_searchers()[cut_ix];
        let searcher = &searchers[params_ix];
        let batched = searcher.search_batch(&queries, k, mode);
        prop_assert_eq!(batched.len(), queries.len());
        for (q, b) in queries.iter().zip(&batched) {
            let per = searcher.search_with_mode(&mut QueryScratch::new(), q, k, mode);
            assert_serp_identical(b, &per);
        }
        prop_assert!(*cut <= timeline().len());
    }
}

/// Batched execution never trips the re-entrancy fallback in
/// `with_thread_scratch` — workers own their scratches outright.
#[test]
fn batching_never_falls_back_on_scratch_allocation() {
    let before = shift_search::scratch_fallbacks();
    let queries: Vec<String> = (0..64).map(|i| format!("best laptops {i}")).collect();
    let _ = engines()[0].search_batch(&queries, 10, EvalMode::Pruned);
    let _ = sharded_engines()[0].search_batch(&queries, 10, EvalMode::Pruned);
    assert_eq!(
        shift_search::scratch_fallbacks(),
        before,
        "batch execution must not allocate fallback scratches"
    );
}
