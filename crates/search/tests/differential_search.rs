//! Differential gate for the DAAT kernel: both evaluation modes — the
//! exhaustive merge and the max-score/block-max *pruned* kernel — must
//! return byte-identical SERPs to the frozen term-at-a-time reference
//! scorer (`query::reference`) on every world, parameterization, query
//! and k — scores compared at the bit level, not with a tolerance.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use shift_corpus::{World, WorldConfig};
use shift_search::query::reference;
use shift_search::{EvalMode, QueryScratch, RankingParams, SearchEngine, Serp, ShardedIndex};

/// Engines over two independent worlds × the two study
/// parameterizations, plus two stress parameterizations for the
/// kernel's edge paths.
fn engines() -> &'static Vec<SearchEngine> {
    static ENGINES: OnceLock<Vec<SearchEngine>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let mut engines = Vec::new();
        for seed in [4040u64, 91] {
            let world = World::generate(&WorldConfig::small(), seed);
            let google = SearchEngine::build(&world, RankingParams::google());
            let ai = SearchEngine::with_index(google.index_handle(), RankingParams::ai_retrieval());
            engines.push(google);
            engines.push(ai);
        }
        // A degenerate parameterization: no crowding, no coordination,
        // no proximity — exercises the kernel's disabled-feature paths.
        let world = World::generate(&WorldConfig::small(), 17);
        let bare = RankingParams {
            proximity_bonus: 0.0,
            coordination: 0.0,
            max_per_host: 0,
            ..RankingParams::google()
        };
        engines.push(SearchEngine::build(&world, bare));
        // A tie-dense parameterization: b = 0 removes length
        // normalization and zeroed static weights collapse every
        // document's static factors to exactly (1, 1), so documents
        // with equal term frequencies score bit-identically. This is
        // the adversarial case for pruning — equal-score tie clusters
        // straddle the heap threshold, and the `score desc, doc asc`
        // tie-break must survive block skipping.
        let world = World::generate(&WorldConfig::small(), 29);
        let mut ties = RankingParams {
            proximity_bonus: 0.0,
            coordination: 0.0,
            max_per_host: 0,
            authority_weight: 0.0,
            freshness_weight: 0.0,
            ..RankingParams::google()
        };
        ties.bm25.b = 0.0;
        engines.push(SearchEngine::build(&world, ties));
        engines
    })
}

/// Shard counts the sharded differential tests sweep: the unsharded
/// degenerate (1), even and odd partitions, a count that leaves some
/// shards without matches for rare terms (7), and whatever this
/// machine's parallelism is.
fn shard_counts() -> Vec<usize> {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    vec![1, 2, 3, 7, cpus]
}

/// For each engine in [`engines`], sharded views over the *same* index
/// at every count in [`shard_counts`] — same params, same statics, so
/// any output difference is the sharding's fault.
fn sharded_engines() -> &'static Vec<Vec<SearchEngine>> {
    static SHARDED: OnceLock<Vec<Vec<SearchEngine>>> = OnceLock::new();
    SHARDED.get_or_init(|| {
        engines()
            .iter()
            .map(|engine| {
                shard_counts()
                    .into_iter()
                    .map(|count| {
                        let view = ShardedIndex::build(engine.index_handle(), count);
                        SearchEngine::with_sharded_index(Arc::new(view), engine.params().clone())
                    })
                    .collect()
            })
            .collect()
    })
}

/// Full structural equality with bit-exact scores.
fn assert_serp_identical(kernel: &Serp, reference: &Serp) {
    assert_eq!(kernel.query, reference.query);
    assert_eq!(
        kernel.results.len(),
        reference.results.len(),
        "result counts differ"
    );
    for (i, (a, b)) in kernel.results.iter().zip(&reference.results).enumerate() {
        assert_eq!(a.url, b.url, "url diverges at rank {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score diverges at rank {i}: {} vs {}",
            a.score,
            b.score
        );
        assert_eq!(a.page, b.page, "page diverges at rank {i}");
        assert_eq!(a.host, b.host, "host diverges at rank {i}");
        assert_eq!(a.title, b.title, "title diverges at rank {i}");
        assert_eq!(a.snippet, b.snippet, "snippet diverges at rank {i}");
        assert_eq!(a.source_type, b.source_type);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
    }
}

/// Pruned mode, exhaustive mode and the reference oracle must agree
/// byte-for-byte.
fn assert_all_paths_identical(engine: &SearchEngine, q: &str, k: usize) {
    let pruned = engine.search(q, k); // default path = pruned
    let exhaustive = engine.search_with_mode(&mut QueryScratch::new(), q, k, EvalMode::Exhaustive);
    let oracle = reference::search(engine, q, k);
    assert_serp_identical(&pruned, &oracle);
    assert_serp_identical(&exhaustive, &oracle);
}

/// Every shard count, both fan-out disciplines (parallel scoped
/// threads and serial shard order) and both evaluation modes must
/// reproduce the unsharded pruned SERP byte-for-byte.
fn assert_sharded_identical(which: usize, q: &str, k: usize) {
    let base = engines()[which].search(q, k);
    for sharded in &sharded_engines()[which] {
        let mut scratch = QueryScratch::new();
        let parallel = sharded.search_with(&mut scratch, q, k);
        let serial = sharded.search_with_mode_serial(&mut scratch, q, k, EvalMode::Pruned);
        let exhaustive = sharded.search_with_mode(&mut scratch, q, k, EvalMode::Exhaustive);
        let n = sharded.shard_count();
        assert_serp_identical(&parallel, &base);
        assert_serp_identical(&serial, &base);
        assert_serp_identical(&exhaustive, &base);
        assert!(n >= 1);
    }
}

/// Query strings mixing realistic templates (which hit many postings,
/// including duplicate terms) with arbitrary junk.
fn query() -> impl Strategy<Value = String> {
    prop_oneof![
        (
            prop_oneof![
                Just("best"),
                Just("top 10"),
                Just("most reliable"),
                Just("buy"),
                Just("review"),
            ],
            prop_oneof![
                Just("smartphones"),
                Just("laptops"),
                Just("SUVs"),
                Just("hotels"),
                Just("credit cards"),
                Just("espresso machines"),
                Just("smartwatches battery"),
            ],
            prop_oneof![
                Just(""),
                Just(" 2025"),
                Just(" for students"),
                Just(" battery battery"), // duplicate query terms
            ],
        )
            .prop_map(|(a, b, c)| format!("{a} {b}{c}")),
        "\\PC{0,48}",
    ]
}

/// Single-term queries: with one cursor every pruning decision is a
/// block-bound test, the pure block-max skipping path.
fn single_term_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("best".to_string()),
        Just("laptops".to_string()),
        Just("battery".to_string()),
        Just("review".to_string()),
        Just("hotels".to_string()),
        Just("2025".to_string()),
    ]
}

/// Queries that analyze to nothing (stopwords) or resolve no cursors
/// (terms absent from the vocabulary) — both must yield empty SERPs
/// from every path.
fn degenerate_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("the of and".to_string()),
        Just("a an the".to_string()),
        Just("xylophonic quuxations".to_string()),
        Just("zzzzqqq wwwwvvv".to_string()),
        Just("the xylophonic of".to_string()),
        Just("".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pruned kernel, the exhaustive kernel and the reference
    /// scorer agree byte-for-byte on every engine, query and k.
    #[test]
    fn kernel_matches_reference(q in query(), k in 0usize..25, which in 0usize..6) {
        assert_all_paths_identical(&engines()[which], &q, k);
    }

    /// Overfetch larger than the matching set (k up to world size and
    /// beyond): pruning must degrade to the exhaustive merge without
    /// dropping or reordering anything.
    #[test]
    fn k_at_or_beyond_matching_docs(q in query(), k in 500usize..2000, which in 0usize..6) {
        assert_all_paths_identical(&engines()[which], &q, k);
    }

    /// Single-term queries exercise pure block-max skipping.
    #[test]
    fn single_term_queries_match(q in single_term_query(), k in 1usize..40, which in 0usize..6) {
        assert_all_paths_identical(&engines()[which], &q, k);
    }

    /// All-stopword / unknown-term / empty queries return empty SERPs
    /// from every path.
    #[test]
    fn degenerate_queries_are_empty_everywhere(q in degenerate_query(), k in 0usize..20, which in 0usize..6) {
        let engine = &engines()[which];
        let pruned = engine.search(&q, k);
        let exhaustive = engine.search_with_mode(&mut QueryScratch::new(), &q, k, EvalMode::Exhaustive);
        let oracle = reference::search(engine, &q, k);
        prop_assert!(pruned.results.is_empty());
        prop_assert!(exhaustive.results.is_empty());
        prop_assert!(oracle.results.is_empty());
    }

    /// The tie-dense engine (uniform static factors, no length
    /// normalization) produces equal-score clusters; whatever k cuts
    /// through a cluster, the `score desc, doc asc` order must survive
    /// pruning bit-for-bit.
    #[test]
    fn tie_clusters_straddling_the_threshold(q in single_term_query(), k in 1usize..60) {
        assert_all_paths_identical(&engines()[5], &q, k);
    }

    /// A single scratch reused across an arbitrary query sequence never
    /// leaks state between queries (generation stamps + cleared buffers).
    #[test]
    fn scratch_reuse_never_leaks_state(queries in prop::collection::vec(query(), 1..6)) {
        let engine = &engines()[0];
        let mut scratch = QueryScratch::new();
        for q in &queries {
            let reused = engine.search_with(&mut scratch, q, 10);
            let fresh = engine.search_with(&mut QueryScratch::new(), q, 10);
            assert_serp_identical(&reused, &fresh);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Document-partitioned execution is invisible in the output: for
    /// every shard count (even/odd partitions, counts leaving rare
    /// terms with zero-match shards, this machine's parallelism), both
    /// fan-out disciplines and both modes agree byte-for-byte with the
    /// unsharded kernel — and with the reference oracle.
    #[test]
    fn sharded_matches_unsharded_and_oracle(q in query(), k in 0usize..25, which in 0usize..6) {
        assert_sharded_identical(which, &q, k);
        let oracle = reference::search(&engines()[which], &q, k);
        let sharded = sharded_engines()[which].last().unwrap().search(&q, k);
        assert_serp_identical(&sharded, &oracle);
    }

    /// k at or beyond the matching set: every shard degrades to an
    /// exhaustive local scan and the merge must still be exact.
    #[test]
    fn sharded_k_at_or_beyond_matching_docs(q in query(), k in 500usize..2000, which in 0usize..6) {
        assert_sharded_identical(which, &q, k);
    }

    /// The tie-dense engine under sharding: equal-score clusters span
    /// the whole document space, so contiguous-range partitions cut
    /// straight through them — the merged `score desc, doc asc` order
    /// must reassemble every cluster bit-for-bit.
    #[test]
    fn sharded_tie_clusters_straddle_shard_boundaries(q in single_term_query(), k in 1usize..60) {
        assert_sharded_identical(5, &q, k);
    }
}

/// More shards than documents: the trailing shards own empty document
/// ranges, gather nothing, and must merge away without a trace.
#[test]
fn empty_shards_merge_away() {
    let engine = &engines()[0];
    let docs = engine.index().postings().doc_count() as usize;
    let view = ShardedIndex::build(engine.index_handle(), docs + 5);
    let sharded = SearchEngine::with_sharded_index(Arc::new(view), engine.params().clone());
    for q in [
        "best laptops for students",
        "best smartphones camera battery",
        "review",
        "the of and",
    ] {
        for k in [1usize, 10, 100] {
            let base = engine.search(q, k);
            assert_serp_identical(&sharded.search(q, k), &base);
            let serial =
                sharded.search_with_mode_serial(&mut QueryScratch::new(), q, k, EvalMode::Pruned);
            assert_serp_identical(&serial, &base);
        }
    }
}

/// Sharded pruning still skips work: on the serial sharded path (whose
/// counters are deterministic — the threshold flows forward through
/// the shared broadcast in shard order) `docs_scored` stays strictly
/// below the exhaustive count, for every shard count.
#[test]
fn sharded_pruning_scores_fewer_documents() {
    let queries = [
        "best laptops for students",
        "best smartphones camera battery",
        "top 10 hotels 2025",
        "review espresso machines",
    ];
    let mut exhaustive_scratch = QueryScratch::new();
    for q in queries {
        let _ = engines()[0].search_with_mode(&mut exhaustive_scratch, q, 10, EvalMode::Exhaustive);
    }
    let exhaustive = exhaustive_scratch.take_stats();
    for sharded in &sharded_engines()[0] {
        let mut scratch = QueryScratch::new();
        for q in queries {
            let _ = sharded.search_with_mode_serial(&mut scratch, q, 10, EvalMode::Pruned);
        }
        let pruned = scratch.take_stats();
        assert!(pruned.docs_scored > 0);
        assert!(
            pruned.docs_scored < exhaustive.docs_scored,
            "{} shards: pruned {pruned:?} vs exhaustive {exhaustive:?}",
            sharded.shard_count()
        );
    }
}

/// Two consecutive queries on one scratch: the second must not see the
/// first's crowding counters or accumulator contents. The pair is chosen
/// so both queries hit overlapping hosts/documents.
#[test]
fn consecutive_queries_on_one_scratch_do_not_leak() {
    let engine = &engines()[0];
    let mut scratch = QueryScratch::new();
    let a1 = engine.search_with(&mut scratch, "best smartphones camera battery", 10);
    let b1 = engine.search_with(&mut scratch, "best smartphones 2025", 10);
    // Same queries against a never-used scratch.
    let a2 = engine.search_with(
        &mut QueryScratch::new(),
        "best smartphones camera battery",
        10,
    );
    let b2 = engine.search_with(&mut QueryScratch::new(), "best smartphones 2025", 10);
    assert_serp_identical(&a1, &a2);
    assert_serp_identical(&b1, &b2);
    // And repeating the first query after the second still agrees.
    let a3 = engine.search_with(&mut scratch, "best smartphones camera battery", 10);
    assert_serp_identical(&a3, &a2);
}

/// The kernel's crowding (dense stamped counters over interned host ids)
/// agrees with the reference's string-keyed counting on a query dense
/// enough to trigger the per-host cap.
#[test]
fn host_crowding_agrees_with_reference() {
    for engine in engines() {
        let q = "best smartphones camera battery life";
        assert_all_paths_identical(engine, q, 20);
    }
}

/// The tie-dense engine really does produce equal-score clusters (the
/// tie tests above would be vacuous otherwise), and the clusters come
/// back in ascending document order.
#[test]
fn tie_engine_produces_real_score_ties() {
    let engine = &engines()[5];
    let serp = engine.search("best", 60);
    let mut tie_pairs = 0;
    for pair in serp.results.windows(2) {
        if pair[0].score.to_bits() == pair[1].score.to_bits() {
            tie_pairs += 1;
        }
    }
    assert!(
        tie_pairs > 0,
        "expected bit-equal score ties in the tie-dense engine"
    );
    assert_serp_identical(&serp, &reference::search(engine, "best", 60));
}

/// Pruning effectiveness is visible through the public stats while the
/// output stays byte-identical — the core claim of this PR.
#[test]
fn pruning_skips_work_but_not_results() {
    let engine = &engines()[0];
    let mut pruned_scratch = QueryScratch::new();
    let mut exhaustive_scratch = QueryScratch::new();
    for q in [
        "best laptops for students",
        "best smartphones camera battery",
        "top 10 hotels 2025",
        "review espresso machines",
    ] {
        let fast = engine.search_with_mode(&mut pruned_scratch, q, 10, EvalMode::Pruned);
        let slow = engine.search_with_mode(&mut exhaustive_scratch, q, 10, EvalMode::Exhaustive);
        assert_serp_identical(&fast, &slow);
    }
    let fast_stats = pruned_scratch.take_stats();
    let slow_stats = exhaustive_scratch.take_stats();
    assert!(
        fast_stats.docs_scored < slow_stats.docs_scored,
        "pruning scored as much as the exhaustive merge: {fast_stats:?} vs {slow_stats:?}"
    );
}
