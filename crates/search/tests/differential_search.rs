//! Differential gate for the DAAT kernel: the fast path must return
//! byte-identical SERPs to the frozen term-at-a-time reference scorer
//! (`query::reference`) on every world, parameterization, query and k —
//! scores compared at the bit level, not with a tolerance.

use std::sync::OnceLock;

use proptest::prelude::*;
use shift_corpus::{World, WorldConfig};
use shift_search::query::reference;
use shift_search::{QueryScratch, RankingParams, SearchEngine, Serp};

/// Engines over two independent worlds × the two study parameterizations.
fn engines() -> &'static Vec<SearchEngine> {
    static ENGINES: OnceLock<Vec<SearchEngine>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let mut engines = Vec::new();
        for seed in [4040u64, 91] {
            let world = World::generate(&WorldConfig::small(), seed);
            let google = SearchEngine::build(&world, RankingParams::google());
            let ai = SearchEngine::with_index(google.index_handle(), RankingParams::ai_retrieval());
            engines.push(google);
            engines.push(ai);
        }
        // A degenerate parameterization: no crowding, no coordination,
        // no proximity — exercises the kernel's disabled-feature paths.
        let world = World::generate(&WorldConfig::small(), 17);
        let bare = RankingParams {
            proximity_bonus: 0.0,
            coordination: 0.0,
            max_per_host: 0,
            ..RankingParams::google()
        };
        engines.push(SearchEngine::build(&world, bare));
        engines
    })
}

/// Full structural equality with bit-exact scores.
fn assert_serp_identical(kernel: &Serp, reference: &Serp) {
    assert_eq!(kernel.query, reference.query);
    assert_eq!(
        kernel.results.len(),
        reference.results.len(),
        "result counts differ"
    );
    for (i, (a, b)) in kernel.results.iter().zip(&reference.results).enumerate() {
        assert_eq!(a.url, b.url, "url diverges at rank {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score diverges at rank {i}: {} vs {}",
            a.score,
            b.score
        );
        assert_eq!(a.page, b.page, "page diverges at rank {i}");
        assert_eq!(a.host, b.host, "host diverges at rank {i}");
        assert_eq!(a.title, b.title, "title diverges at rank {i}");
        assert_eq!(a.snippet, b.snippet, "snippet diverges at rank {i}");
        assert_eq!(a.source_type, b.source_type);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
    }
}

/// Query strings mixing realistic templates (which hit many postings,
/// including duplicate terms) with arbitrary junk.
fn query() -> impl Strategy<Value = String> {
    prop_oneof![
        (
            prop_oneof![
                Just("best"),
                Just("top 10"),
                Just("most reliable"),
                Just("buy"),
                Just("review"),
            ],
            prop_oneof![
                Just("smartphones"),
                Just("laptops"),
                Just("SUVs"),
                Just("hotels"),
                Just("credit cards"),
                Just("espresso machines"),
                Just("smartwatches battery"),
            ],
            prop_oneof![
                Just(""),
                Just(" 2025"),
                Just(" for students"),
                Just(" battery battery"), // duplicate query terms
            ],
        )
            .prop_map(|(a, b, c)| format!("{a} {b}{c}")),
        "\\PC{0,48}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The kernel and the reference scorer agree byte-for-byte on every
    /// engine, query and k.
    #[test]
    fn kernel_matches_reference(q in query(), k in 0usize..25, which in 0usize..5) {
        let engine = &engines()[which];
        let fast = engine.search(&q, k);
        let slow = reference::search(engine, &q, k);
        assert_serp_identical(&fast, &slow);
    }

    /// A single scratch reused across an arbitrary query sequence never
    /// leaks state between queries (generation stamps + cleared buffers).
    #[test]
    fn scratch_reuse_never_leaks_state(queries in prop::collection::vec(query(), 1..6)) {
        let engine = &engines()[0];
        let mut scratch = QueryScratch::new();
        for q in &queries {
            let reused = engine.search_with(&mut scratch, q, 10);
            let fresh = engine.search_with(&mut QueryScratch::new(), q, 10);
            assert_serp_identical(&reused, &fresh);
        }
    }
}

/// Two consecutive queries on one scratch: the second must not see the
/// first's crowding counters or accumulator contents. The pair is chosen
/// so both queries hit overlapping hosts/documents.
#[test]
fn consecutive_queries_on_one_scratch_do_not_leak() {
    let engine = &engines()[0];
    let mut scratch = QueryScratch::new();
    let a1 = engine.search_with(&mut scratch, "best smartphones camera battery", 10);
    let b1 = engine.search_with(&mut scratch, "best smartphones 2025", 10);
    // Same queries against a never-used scratch.
    let a2 = engine.search_with(
        &mut QueryScratch::new(),
        "best smartphones camera battery",
        10,
    );
    let b2 = engine.search_with(&mut QueryScratch::new(), "best smartphones 2025", 10);
    assert_serp_identical(&a1, &a2);
    assert_serp_identical(&b1, &b2);
    // And repeating the first query after the second still agrees.
    let a3 = engine.search_with(&mut scratch, "best smartphones camera battery", 10);
    assert_serp_identical(&a3, &a2);
}

/// The kernel's crowding (dense stamped counters over interned host ids)
/// agrees with the reference's string-keyed counting on a query dense
/// enough to trigger the per-host cap.
#[test]
fn host_crowding_agrees_with_reference() {
    for engine in engines() {
        let q = "best smartphones camera battery life";
        let fast = engine.search(q, 20);
        let slow = reference::search(engine, q, 20);
        assert_serp_identical(&fast, &slow);
    }
}
