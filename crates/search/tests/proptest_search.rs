//! Property-based tests for the search engine: SERP invariants that must
//! hold for any query string and any k.

use std::sync::OnceLock;

use proptest::prelude::*;
use shift_corpus::{World, WorldConfig};
use shift_search::{RankingParams, SearchEngine};

fn engines() -> &'static (SearchEngine, SearchEngine) {
    static ENGINES: OnceLock<(SearchEngine, SearchEngine)> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let world = World::generate(&WorldConfig::small(), 4040);
        let google = SearchEngine::build(&world, RankingParams::google());
        let ai = SearchEngine::with_index(google.index_handle(), RankingParams::ai_retrieval());
        (google, ai)
    })
}

/// Query strings built from realistic tokens plus arbitrary junk.
fn query() -> impl Strategy<Value = String> {
    prop_oneof![
        // Realistic: template words + topic nouns.
        (
            prop_oneof![
                Just("best"),
                Just("top 10"),
                Just("most reliable"),
                Just("buy")
            ],
            prop_oneof![
                Just("smartphones"),
                Just("laptops"),
                Just("SUVs"),
                Just("hotels"),
                Just("credit cards"),
                Just("espresso machines"),
            ],
            prop_oneof![Just(""), Just(" 2025"), Just(" for students")],
        )
            .prop_map(|(a, b, c)| format!("{a} {b}{c}")),
        // Arbitrary junk (must not panic, may return empty).
        "\\PC{0,48}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Search never panics, respects k, and returns strictly ordered
    /// scores with no duplicate URLs.
    #[test]
    fn serp_invariants(q in query(), k in 0usize..25) {
        let (google, _) = engines();
        let serp = google.search(&q, k);
        prop_assert!(serp.results.len() <= k);
        for pair in serp.results.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score, "scores out of order");
        }
        let mut urls: Vec<&str> = serp.results.iter().map(|r| r.url.as_str()).collect();
        let n = urls.len();
        urls.sort_unstable();
        urls.dedup();
        prop_assert_eq!(urls.len(), n, "duplicate URLs in SERP");
    }

    /// Growing k only extends the SERP; the prefix is stable.
    #[test]
    fn k_monotonicity(q in query()) {
        let (google, _) = engines();
        let small = google.search(&q, 5);
        let large = google.search(&q, 10);
        prop_assert!(large.results.len() >= small.results.len());
        for (a, b) in small.results.iter().zip(&large.results) {
            prop_assert_eq!(&a.url, &b.url, "prefix must be stable as k grows");
        }
    }

    /// Host crowding holds for every query.
    #[test]
    fn host_crowding_invariant(q in query()) {
        let (google, _) = engines();
        let serp = google.search(&q, 20);
        let mut counts = std::collections::HashMap::new();
        for r in &serp.results {
            *counts.entry(r.host.as_str()).or_insert(0usize) += 1;
        }
        for (host, n) in counts {
            prop_assert!(n <= 2, "host {host} appears {n} times");
        }
    }

    /// Determinism: identical query, identical SERP.
    #[test]
    fn search_is_deterministic(q in query()) {
        let (google, ai) = engines();
        let (g1, g2) = (google.search(&q, 10), google.search(&q, 10));
        prop_assert_eq!(g1.urls(), g2.urls());
        let (a1, a2) = (ai.search(&q, 10), ai.search(&q, 10));
        prop_assert_eq!(a1.urls(), a2.urls());
    }

    /// For realistic queries, AI retrieval never returns *older* result
    /// sets than Google on average (its freshness weight is higher).
    #[test]
    fn ai_retrieval_is_no_staler(
        noun in prop_oneof![
            Just("smartphones"), Just("laptops"), Just("smartwatches"), Just("hotels")
        ]
    ) {
        let (google, ai) = engines();
        let q = format!("top 10 best {noun} 2025");
        let mean_age = |serp: &shift_search::Serp| {
            if serp.results.is_empty() {
                return 0.0;
            }
            serp.results.iter().map(|r| r.age_days).sum::<f64>() / serp.results.len() as f64
        };
        let g = google.search(&q, 10);
        let a = ai.search(&q, 10);
        prop_assume!(!g.results.is_empty() && !a.results.is_empty());
        prop_assert!(
            mean_age(&a) <= mean_age(&g) + 30.0,
            "AI retrieval staler: {:.0} vs {:.0}",
            mean_age(&a),
            mean_age(&g)
        );
    }
}
