//! Property-based round-trips for the compressed-postings codecs, plus
//! the block-granular-seek differential: on any posting list, the
//! compressed store's `lower_bound` must land on exactly the posting
//! the raw store's `partition_point` finds.

use proptest::prelude::*;
use shift_search::codec;
use shift_search::postings::{DocNum, PostingsStore, BLOCK_LEN};

/// Sorts and dedups into a strictly-increasing doc-id list.
fn ascending(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Arbitrary strictly-increasing doc-id lists over the full `u32`
/// range: huge deltas, doc id 0 and `u32::MAX`, and runs of adjacent
/// ids all occur.
fn doc_id_list() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        // Full-range ids (deltas up to ~u32::MAX).
        prop::collection::vec(0u32..=u32::MAX, 1..150).prop_map(ascending),
        // Dense runs: equal gaps of 1 pack at width 0.
        (0u32..1000, 1usize..200).prop_map(|(start, n)| (start..start + n as u32).collect()),
        // Small constant gaps (runs of equal deltas).
        (0u32..1000, 1u32..16, 1usize..200)
            .prop_map(|(start, gap, n)| (0..n as u32).map(|i| start + i * gap).collect()),
    ]
}

/// Builds one raw and one compressed store over the same synthetic
/// corpus. Documents are added densely from 0 through the largest
/// listed id (the store requires sequential doc numbers); term "t" is
/// posted only in the listed docs (tf pattern derived from the
/// posting index), so its list carries exactly the requested gaps.
/// Filler terms in every doc make lists end mid-block.
fn twin_stores(docs: &[DocNum]) -> (PostingsStore, PostingsStore) {
    let mut raw = PostingsStore::new();
    let mut packed = PostingsStore::new_compressed();
    let last = *docs.last().expect("non-empty doc list");
    let mut next = 0usize;
    for d in 0..=last {
        let (title, mut body): (Vec<String>, Vec<String>) = if next < docs.len() && docs[next] == d
        {
            let i = next;
            next += 1;
            (
                std::iter::repeat_with(|| "t".to_string())
                    .take((i % 3) + 1)
                    .collect(),
                std::iter::repeat_with(|| "t".to_string())
                    .take(i % 4)
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        body.push(format!("filler{}", d % 7));
        raw.add_document(d, &title, &body);
        packed.add_document(d, &title, &body);
    }
    raw.finish();
    packed.finish();
    (raw, packed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Block codec round-trip over adversarial doc-id lists, including
    /// partial final blocks and full-range deltas.
    #[test]
    fn block_codec_roundtrips(docs in doc_id_list()) {
        for chunk in docs.chunks(BLOCK_LEN) {
            let titles: Vec<u32> = (0..chunk.len() as u32).map(|i| i % 5).collect();
            let bodies: Vec<u32> = (0..chunk.len() as u32).map(|i| (i * 7) % 9).collect();
            let mut buf = Vec::new();
            codec::encode_block(&mut buf, chunk, &titles, &bodies);
            let mut d = [0u32; BLOCK_LEN];
            let mut t = [0u32; BLOCK_LEN];
            let mut b = [0u32; BLOCK_LEN];
            let n = chunk.len();
            let doc_sec = codec::decode_block_docs(&buf, n, &mut d);
            prop_assert_eq!(doc_sec, codec::doc_section_len(&buf, n));
            codec::decode_block_tfs(&buf, doc_sec, n, &mut t, &mut b);
            prop_assert_eq!(&d[..n], chunk);
            prop_assert_eq!(&t[..n], titles.as_slice());
            prop_assert_eq!(&b[..n], bodies.as_slice());
        }
    }

    /// Position codec round-trip over arbitrary strictly-increasing
    /// position lists (empty lists included).
    #[test]
    fn position_codec_roundtrips(
        positions in prop::collection::vec(0u32..=u32::MAX, 0..100).prop_map(ascending)
    ) {
        let mut out = Vec::new();
        codec::encode_positions(&mut out, &positions);
        let mut back = Vec::new();
        codec::decode_positions(&out, |p| back.push(p));
        prop_assert_eq!(back, positions);
    }

    /// A compressed store iterates exactly the postings and positions
    /// its raw twin holds.
    #[test]
    fn compressed_store_mirrors_raw(docs in prop::collection::vec(0u32..5000, 1..260).prop_map(ascending)) {
        let (raw, packed) = twin_stores(&docs);
        let id_r = raw.term_id("t").expect("term indexed");
        let id_p = packed.term_id("t").expect("term indexed");
        prop_assert_eq!(raw.doc_freq_by_id(id_r), packed.doc_freq_by_id(id_p));

        let collect = |store: &PostingsStore, id| {
            let mut v: Vec<(usize, DocNum, u32, u32)> = Vec::new();
            store.for_each_posting(id, |at, doc, tt, bt| v.push((at, doc, tt, bt)));
            v
        };
        let r = collect(&raw, id_r);
        let p = collect(&packed, id_p);
        prop_assert_eq!(&r, &p);
        for &(at, _, _, _) in &r {
            let mut pr = Vec::new();
            raw.for_each_position(id_r, at, |pos| pr.push(pos));
            let mut pp = Vec::new();
            packed.for_each_position(id_p, at, |pos| pp.push(pos));
            prop_assert_eq!(pr, pp);
        }
    }

    /// Block-granular seek differential: for any target, the
    /// compressed `lower_bound` (walk block summaries, decode one
    /// block, binary-search inside) equals the raw `partition_point`
    /// answer — so packed cursors land on the same posting the raw
    /// kernel would.
    #[test]
    fn lower_bound_matches_partition_point(
        docs in prop::collection::vec(0u32..4000, 1..300).prop_map(ascending),
        targets in prop::collection::vec(0u32..4200, 1..40),
    ) {
        let (raw, packed) = twin_stores(&docs);
        let id_r = raw.term_id("t").expect("term indexed");
        let id_p = packed.term_id("t").expect("term indexed");
        for target in targets {
            let want = docs.partition_point(|&d| d < target) as u32;
            prop_assert_eq!(raw.lower_bound(id_r, target), want);
            prop_assert_eq!(packed.lower_bound(id_p, target), want);
        }
        // Seeks right at, before, and past the list tail.
        let last = *docs.last().unwrap();
        for target in [last, last.saturating_add(1)] {
            let want = docs.partition_point(|&d| d < target) as u32;
            prop_assert_eq!(packed.lower_bound(id_p, target), want);
        }
    }

    /// Partial-block subranges decode head and tail cuts exactly: any
    /// `[lo, hi)` of the list enumerates the same postings as the raw
    /// slice.
    #[test]
    fn posting_subranges_cut_blocks_exactly(
        docs in prop::collection::vec(0u32..4000, 1..300).prop_map(ascending),
        cuts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..12),
    ) {
        let (raw, packed) = twin_stores(&docs);
        let id_r = raw.term_id("t").expect("term indexed");
        let id_p = packed.term_id("t").expect("term indexed");
        let n = docs.len() as u32;
        for (a, b) in cuts {
            let lo = (a * n as f64) as u32;
            let hi = lo + ((b * (n - lo.min(n)) as f64) as u32);
            let collect = |store: &PostingsStore, id| {
                let mut v: Vec<(usize, DocNum, u32, u32)> = Vec::new();
                store.for_each_posting_range(id, lo, hi.min(n), &mut |at, doc, tt, bt| {
                    v.push((at, doc, tt, bt))
                });
                v
            };
            prop_assert_eq!(collect(&raw, id_r), collect(&packed, id_p));
        }
    }
}

/// Handwritten adversarial shapes the generators hit only rarely: doc
/// id 0, a lone posting, extreme deltas and an exactly-full block.
#[test]
fn adversarial_edge_lists_roundtrip() {
    for docs in [
        vec![0u32],
        vec![u32::MAX],
        vec![0, u32::MAX - 1, u32::MAX],
        (0..BLOCK_LEN as u32).collect::<Vec<u32>>(),
        (0..=BLOCK_LEN as u32).collect::<Vec<u32>>(),
    ] {
        let titles = vec![1u32; docs.len()];
        let bodies = vec![0u32; docs.len()];
        for chunk_docs in docs.chunks(BLOCK_LEN) {
            let mut buf = Vec::new();
            codec::encode_block(
                &mut buf,
                chunk_docs,
                &titles[..chunk_docs.len()],
                &bodies[..chunk_docs.len()],
            );
            let mut d = [0u32; BLOCK_LEN];
            let sec = codec::decode_block_docs(&buf, chunk_docs.len(), &mut d);
            assert_eq!(sec, codec::doc_section_len(&buf, chunk_docs.len()));
            assert_eq!(&d[..chunk_docs.len()], chunk_docs);
        }
    }
}

/// `lower_bound` on an empty-term store and single-posting lists.
#[test]
fn lower_bound_edge_cases() {
    let (raw, packed) = twin_stores(&[42]);
    let id = packed.term_id("t").unwrap();
    assert_eq!(packed.lower_bound(id, 0), 0);
    assert_eq!(packed.lower_bound(id, 42), 0);
    assert_eq!(packed.lower_bound(id, 43), 1);
    let id_r = raw.term_id("t").unwrap();
    assert_eq!(raw.lower_bound(id_r, 43), 1);
}
