//! Differential gate for the live index: a point-in-time snapshot of a
//! [`LiveIndex`] that absorbed the first `cut` timeline events must
//! serve SERPs **byte-identical** to a batch [`SearchEngine`] built
//! over the oracle world (`Timeline::world_at`) holding exactly the
//! same live page versions — across ranking parameterizations, flush /
//! compaction layouts (including randomly injected flush points), both
//! evaluation modes, and arbitrary cut points. Scores compare at the
//! bit level, not with a tolerance.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use shift_corpus::{EventKind, Timeline, TimelineConfig, World, WorldConfig};
use shift_search::live::{LiveDoc, LiveIndex, LiveIndexConfig, LiveIndexStats, LiveSearcher};
use shift_search::{EvalMode, QueryScratch, RankingParams, SearchEngine, Serp};

/// The five ranking parameterizations under test: the two study
/// configurations, a disabled-features one, a tie-dense one, and a
/// crowding-tight one.
fn params_set() -> Vec<RankingParams> {
    let bare = RankingParams {
        proximity_bonus: 0.0,
        coordination: 0.0,
        max_per_host: 0,
        ..RankingParams::google()
    };
    let mut ties = RankingParams {
        proximity_bonus: 0.0,
        coordination: 0.0,
        max_per_host: 0,
        authority_weight: 0.0,
        freshness_weight: 0.0,
        ..RankingParams::google()
    };
    ties.bm25.b = 0.0;
    let tight = RankingParams {
        max_per_host: 1,
        ..RankingParams::ai_retrieval()
    };
    vec![
        RankingParams::google(),
        RankingParams::ai_retrieval(),
        bare,
        ties,
        tight,
    ]
}

/// Three contrasting segment layouts over the same event stream: the
/// test default (flushes + occasional merges), an aggressive 2-way
/// always-compact stack, and a never-flushing pure-memtable snapshot.
fn live_configs() -> Vec<LiveIndexConfig> {
    vec![
        LiveIndexConfig::tiny(42),
        LiveIndexConfig {
            flush_bytes: 6 * 1024,
            compact_trigger: 2,
            fanin_min: 2,
            fanin_max: 2,
            seed: 7,
        },
        LiveIndexConfig {
            flush_bytes: usize::MAX,
            compact_trigger: 4,
            fanin_min: 2,
            fanin_max: 3,
            seed: 1,
        },
    ]
}

fn base_world() -> World {
    World::generate(&WorldConfig::small(), 4040)
}

fn timeline() -> &'static Timeline {
    static TIMELINE: OnceLock<Timeline> = OnceLock::new();
    TIMELINE.get_or_init(|| Timeline::generate(&base_world(), &TimelineConfig::dense(), 5))
}

/// Replays the first `cut` events into a fresh live index, forcing a
/// memtable flush after each applied-event index in `forced_flushes`
/// (segment layout must never leak into SERPs).
fn live_index_at(config: LiveIndexConfig, cut: usize, forced_flushes: &[usize]) -> LiveIndex {
    let world = base_world();
    let mut index = LiveIndex::new(config);
    for (i, event) in timeline().events()[..cut].iter().enumerate() {
        match event.kind {
            EventKind::Delete => index.delete(event.page.id),
            EventKind::Publish | EventKind::Update => {
                index.upsert(LiveDoc::from_page(&world, &event.page));
            }
        }
        if forced_flushes.contains(&i) {
            index.flush();
        }
    }
    index
}

/// Everything cached for one cut point: the batch oracle per params and
/// a snapshot searcher per (live config, params).
struct CutFixture {
    cut: usize,
    oracles: Vec<SearchEngine>,
    searchers: Vec<Vec<LiveSearcher>>,
}

fn cuts() -> &'static Vec<CutFixture> {
    static CUTS: OnceLock<Vec<CutFixture>> = OnceLock::new();
    CUTS.get_or_init(|| {
        let world = base_world();
        let n = timeline().len();
        [n / 4, n / 2, 3 * n / 4, n]
            .into_iter()
            .map(|cut| {
                let oracle_world = timeline().world_at(&world, cut);
                let oracles = params_set()
                    .into_iter()
                    .map(|p| SearchEngine::build(&oracle_world, p))
                    .collect();
                let searchers = live_configs()
                    .into_iter()
                    .map(|config| {
                        let snapshot = Arc::new(live_index_at(config, cut, &[]).snapshot());
                        params_set()
                            .into_iter()
                            .map(|p| LiveSearcher::new(Arc::clone(&snapshot), p))
                            .collect()
                    })
                    .collect();
                CutFixture {
                    cut,
                    oracles,
                    searchers,
                }
            })
            .collect()
    })
}

/// Full structural equality with bit-exact scores.
fn assert_serp_identical(live: &Serp, oracle: &Serp) {
    assert_eq!(live.query, oracle.query);
    assert_eq!(
        live.results.len(),
        oracle.results.len(),
        "result counts differ"
    );
    for (i, (a, b)) in live.results.iter().zip(&oracle.results).enumerate() {
        assert_eq!(a.url, b.url, "url diverges at rank {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score diverges at rank {i}: {} vs {}",
            a.score,
            b.score
        );
        assert_eq!(a.page, b.page, "page diverges at rank {i}");
        assert_eq!(a.host, b.host, "host diverges at rank {i}");
        assert_eq!(a.title, b.title, "title diverges at rank {i}");
        assert_eq!(a.snippet, b.snippet, "snippet diverges at rank {i}");
        assert_eq!(a.source_type, b.source_type);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
    }
}

/// Both snapshot evaluation modes must reproduce the batch oracle.
fn assert_snapshot_matches_oracle(c: &CutFixture, cfg: usize, p: usize, q: &str, k: usize) {
    let oracle = c.oracles[p].search(q, k);
    let searcher = &c.searchers[cfg][p];
    let mut scratch = QueryScratch::new();
    let pruned = searcher.search_with_mode(&mut scratch, q, k, EvalMode::Pruned);
    let exhaustive = searcher.search_with_mode(&mut scratch, q, k, EvalMode::Exhaustive);
    assert_serp_identical(&pruned, &oracle);
    assert_serp_identical(&exhaustive, &oracle);
}

/// Realistic query templates (many postings, duplicate terms) plus junk.
fn query() -> impl Strategy<Value = String> {
    prop_oneof![
        (
            prop_oneof![
                Just("best"),
                Just("top 10"),
                Just("most reliable"),
                Just("review"),
            ],
            prop_oneof![
                Just("smartphones"),
                Just("laptops"),
                Just("hotels"),
                Just("credit cards"),
                Just("espresso machines"),
                Just("smartwatches battery"),
            ],
            prop_oneof![
                Just(""),
                Just(" 2025"),
                Just(" for students"),
                Just(" battery battery"),
            ],
        )
            .prop_map(|(a, b, c)| format!("{a} {b}{c}")),
        "\\PC{0,32}",
    ]
}

/// Every cut × layout × params combination on a fixed query panel.
#[test]
fn snapshots_match_batch_oracle_everywhere() {
    let queries = [
        "best laptops for students",
        "best smartphones camera battery",
        "top 10 hotels 2025",
        "review espresso machines",
    ];
    for c in cuts() {
        for cfg in 0..c.searchers.len() {
            for p in 0..c.oracles.len() {
                for q in queries {
                    for k in [1usize, 10] {
                        assert_snapshot_matches_oracle(c, cfg, p, q, k);
                    }
                }
            }
        }
    }
}

/// An update's newest body — including the editor's-note suffix only
/// the latest revision carries — is what the snapshot snippets serve.
#[test]
fn snapshots_serve_newest_versions() {
    let c = cuts().last().unwrap();
    assert_eq!(c.cut, timeline().len());
    let oracle = c.oracles[1].search("prices availability rankings rechecked", 10);
    let live = c.searchers[0][1].search("prices availability rankings rechecked", 10);
    assert_serp_identical(&live, &oracle);
    assert!(
        !live.results.is_empty(),
        "updated revisions must be retrievable"
    );
}

/// The snapshot's visible-doc roll-up equals the oracle's corpus size,
/// for every layout at every cut; stored versions never shrink below it.
#[test]
fn snapshot_alive_counts_match_oracle() {
    for c in cuts() {
        let oracle_docs = c.oracles[0].index().postings().doc_count() as usize;
        for searchers in &c.searchers {
            let stats = LiveIndexStats::rollup(&searchers[0].segment_stats());
            assert_eq!(stats.alive, oracle_docs, "at cut {}", c.cut);
            assert!(stats.docs >= stats.alive);
            assert!(stats.read_amplification() >= 1.0);
            assert!(stats.postings_bytes > 0);
        }
    }
}

/// An empty prefix yields an empty snapshot that answers everything
/// with an empty SERP from both modes.
#[test]
fn cut_zero_serves_empty_serps() {
    let snapshot = Arc::new(live_index_at(LiveIndexConfig::tiny(42), 0, &[]).snapshot());
    assert!(snapshot.is_empty());
    for p in params_set() {
        let searcher = LiveSearcher::new(Arc::clone(&snapshot), p);
        let serp = searcher.search("best laptops", 10);
        assert!(serp.results.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random queries and depths across every cached cut, segment
    /// layout and parameterization.
    #[test]
    fn random_queries_match_oracle(
        q in query(),
        k in 0usize..25,
        cut_ix in 0usize..4,
        cfg in 0usize..3,
        p in 0usize..5,
    ) {
        assert_snapshot_matches_oracle(&cuts()[cut_ix], cfg, p, &q, k);
    }

    /// Depths at or beyond the matching set: every segment degrades to
    /// an exhaustive local scan and the merge must still be exact.
    #[test]
    fn k_beyond_matching_docs_matches_oracle(
        q in query(),
        k in 500usize..1200,
        cut_ix in 0usize..4,
        p in 0usize..5,
    ) {
        assert_snapshot_matches_oracle(&cuts()[cut_ix], 0, p, &q, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random flush/compaction layouts: arbitrary config knobs plus
    /// forced flush injections at random event indices must leave the
    /// SERPs byte-identical to the cached fixed-layout snapshot (which
    /// the tests above pin to the batch oracle).
    #[test]
    fn random_layouts_are_invisible_in_serps(
        flush_bytes in 2048usize..32768,
        compact_trigger in 2usize..6,
        fanin_max in 2usize..5,
        seed in 0u64..1000,
        forced in prop::collection::vec(0usize..5000, 0..4),
        q in query(),
        k in 1usize..20,
        cut_ix in 0usize..4,
        p in 0usize..5,
    ) {
        let c = &cuts()[cut_ix];
        let config = LiveIndexConfig {
            flush_bytes,
            compact_trigger,
            fanin_min: 2,
            fanin_max,
            seed,
        };
        let snapshot = Arc::new(live_index_at(config, c.cut, &forced).snapshot());
        let searcher = LiveSearcher::new(snapshot, params_set().swap_remove(p));
        let live = searcher.search(&q, k);
        let oracle = c.oracles[p].search(&q, k);
        assert_serp_identical(&live, &oracle);
    }
}
