//! Crash-recovery gate for the write-ahead log: cut the WAL byte stream
//! at *arbitrary* positions (frame boundaries and mid-frame), replay it
//! through [`LiveIndex::recover`], and the recovered index must be
//! bit-identical — counters, rebuilt WAL bytes, segment stack, and the
//! SERPs its snapshots serve — to a fresh index that applied exactly
//! the mutations surviving the cut. Recovery must also be a sound base
//! for continued ingestion: applying the remaining events to the
//! recovered index converges with the uncut run.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use shift_corpus::{EventKind, Timeline, TimelineConfig, World, WorldConfig};
use shift_search::live::{LiveDoc, LiveIndex, LiveIndexConfig, LiveSearcher, WriteAheadLog};
use shift_search::{QueryScratch, RankingParams, Serp};

const QUERIES: [&str; 3] = [
    "best laptops for students",
    "best smartphones camera battery",
    "review espresso machines",
];

fn config() -> LiveIndexConfig {
    LiveIndexConfig::tiny(13)
}

fn base_world() -> World {
    World::generate(&WorldConfig::small(), 4040)
}

fn timeline() -> &'static Timeline {
    static TIMELINE: OnceLock<Timeline> = OnceLock::new();
    TIMELINE.get_or_init(|| Timeline::generate(&base_world(), &TimelineConfig::dense(), 21))
}

/// Applies timeline events `from..to` to an index.
fn apply_events(index: &mut LiveIndex, from: usize, to: usize) {
    let world = base_world();
    for event in &timeline().events()[from..to] {
        match event.kind {
            EventKind::Delete => index.delete(event.page.id),
            EventKind::Publish | EventKind::Update => {
                index.upsert(LiveDoc::from_page(&world, &event.page));
            }
        }
    }
}

fn index_over(to: usize) -> LiveIndex {
    let mut index = LiveIndex::new(config());
    apply_events(&mut index, 0, to);
    index
}

/// The pre-crash index whose WAL the cut tests carve up: deep enough
/// into the dense stream that flushes, compactions, updates and deletes
/// have all happened (churn lives in the stream's final window, so the
/// fixture stops just short of the end and leaves a tail to resume).
fn uncut_to() -> usize {
    timeline().len() - 50
}

fn uncut() -> &'static LiveIndex {
    static UNCUT: OnceLock<LiveIndex> = OnceLock::new();
    UNCUT.get_or_init(|| {
        let index = index_over(uncut_to());
        let c = index.counters();
        assert!(c.flushes > 0 && c.deletes > 0, "fixture too shallow: {c:?}");
        index
    })
}

fn assert_serp_identical(a: &Serp, b: &Serp) {
    assert_eq!(a.query, b.query);
    assert_eq!(a.results.len(), b.results.len(), "result counts differ");
    for (i, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
        assert_eq!(x.url, y.url, "url diverges at rank {i}");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score at rank {i}");
        assert_eq!(x.page, y.page);
        assert_eq!(x.host, y.host);
        assert_eq!(x.title, y.title);
        assert_eq!(x.snippet, y.snippet);
        assert_eq!(x.source_type, y.source_type);
        assert_eq!(x.age_days.to_bits(), y.age_days.to_bits());
    }
}

/// Snapshot both indexes and compare the query panel bit-for-bit.
fn assert_serves_identically(a: &LiveIndex, b: &LiveIndex) {
    let sa = LiveSearcher::new(Arc::new(a.snapshot()), RankingParams::google());
    let sb = LiveSearcher::new(Arc::new(b.snapshot()), RankingParams::google());
    let mut scratch = QueryScratch::new();
    for q in QUERIES {
        let ra = sa.search_with(&mut scratch, q, 10);
        let rb = sb.search_with(&mut scratch, q, 10);
        assert_serp_identical(&ra, &rb);
    }
}

/// Recovery from a byte prefix must equal a fresh index over the
/// surviving mutations — state and service.
fn assert_recovery_at(cut: usize) {
    let wal = uncut().wal().bytes();
    let cut = cut.min(wal.len());
    let survived = WriteAheadLog::replay(&wal[..cut]).len();
    let recovered = LiveIndex::recover(config(), &wal[..cut]);
    let fresh = index_over(survived);
    assert_eq!(
        recovered.counters(),
        fresh.counters(),
        "counters diverge at cut {cut} ({survived} records)"
    );
    assert_eq!(
        recovered.wal().bytes(),
        fresh.wal().bytes(),
        "rebuilt WAL diverges at cut {cut}"
    );
    assert_eq!(recovered.segments().len(), fresh.segments().len());
    for (ra, rb) in recovered.segments().iter().zip(fresh.segments()) {
        assert_eq!(ra.id(), rb.id());
        assert_eq!(ra.len(), rb.len());
        assert_eq!(ra.tombstones(), rb.tombstones());
    }
    assert_eq!(recovered.memtable().len(), fresh.memtable().len());
    assert_serves_identically(&recovered, &fresh);
}

/// Structured cut points: empty, sub-header, around several frame
/// boundaries, mid-stream, one byte short, and the intact log.
#[test]
fn recovery_at_structured_cut_points() {
    let wal = uncut().wal().bytes();
    let n = wal.len();
    // Walk real frame boundaries to place surgical cuts.
    let mut boundaries = Vec::new();
    let mut at = 0usize;
    while at + 12 <= n {
        let len = u32::from_le_bytes(wal[at..at + 4].try_into().unwrap()) as usize;
        at += 12 + len;
        boundaries.push(at);
    }
    assert!(boundaries.len() > 10, "fixture WAL too small");
    let mid = boundaries[boundaries.len() / 2];
    for cut in [
        0,
        1,
        3,   // inside the first frame header
        11,  // one byte short of the first payload
        mid, // exactly on a boundary
        mid + 5,
        mid.saturating_sub(1),
        n / 3,
        n - 1,
        n,
    ] {
        assert_recovery_at(cut);
    }
}

/// The intact log recovers the full pre-crash index exactly.
#[test]
fn full_replay_is_lossless() {
    let index = uncut();
    let recovered = LiveIndex::recover(config(), index.wal().bytes());
    assert_eq!(recovered.counters(), index.counters());
    assert_eq!(recovered.wal().bytes(), index.wal().bytes());
    assert_serves_identically(&recovered, index);
}

/// Recovery is a sound base for continued ingestion: resume the event
/// stream on a crash-recovered index and it converges bit-for-bit with
/// an index that never crashed.
#[test]
fn recovered_index_continues_ingesting_identically() {
    let wal = uncut().wal().bytes();
    let cut = wal.len() * 3 / 5; // mid-frame in practice
    let survived = WriteAheadLog::replay(&wal[..cut]).len();
    let mut recovered = LiveIndex::recover(config(), &wal[..cut]);
    let resume_to = uncut_to();
    assert!(survived < resume_to);
    apply_events(&mut recovered, survived, resume_to);
    let never_crashed = uncut();
    assert_eq!(recovered.counters(), never_crashed.counters());
    assert_eq!(recovered.wal().bytes(), never_crashed.wal().bytes());
    assert_serves_identically(&recovered, never_crashed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary byte cuts — wherever the crash lands, recovery equals
    /// the fresh build over the surviving record prefix.
    #[test]
    fn recovery_at_arbitrary_byte_cuts(cut in 0usize..1_000_000) {
        assert_recovery_at(cut % (uncut().wal().len() + 1));
    }
}
