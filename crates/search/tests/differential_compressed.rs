//! Differential gate for the compressed read path: an engine built
//! with [`SearchEngine::build_compressed`] (delta/bit-packed postings,
//! packed impacts, dictionary-encoded doc metadata) must return SERPs
//! byte-identical to the raw-layout engine over the same world and
//! parameterization — and to the frozen reference oracle — for every
//! query, k, evaluation mode and shard count. Scores are compared at
//! the bit level, not with a tolerance.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use shift_corpus::{World, WorldConfig};
use shift_search::query::reference;
use shift_search::{EvalMode, QueryScratch, RankingParams, SearchEngine, Serp, ShardedIndex};

/// Raw/compressed engine twins over two worlds × the two study
/// parameterizations, plus the tie-dense stress parameterization
/// (uniform statics, no length normalization) whose equal-score
/// clusters are the adversarial case for block-granular seeks.
fn twins() -> &'static Vec<(SearchEngine, SearchEngine)> {
    static TWINS: OnceLock<Vec<(SearchEngine, SearchEngine)>> = OnceLock::new();
    TWINS.get_or_init(|| {
        let mut twins = Vec::new();
        for seed in [4040u64, 91] {
            let world = World::generate(&WorldConfig::small(), seed);
            for params in [RankingParams::google(), RankingParams::ai_retrieval()] {
                twins.push((
                    SearchEngine::build(&world, params.clone()),
                    SearchEngine::build_compressed(&world, params),
                ));
            }
        }
        let world = World::generate(&WorldConfig::small(), 29);
        let mut ties = RankingParams {
            proximity_bonus: 0.0,
            coordination: 0.0,
            max_per_host: 0,
            authority_weight: 0.0,
            freshness_weight: 0.0,
            ..RankingParams::google()
        };
        ties.bm25.b = 0.0;
        twins.push((
            SearchEngine::build(&world, ties.clone()),
            SearchEngine::build_compressed(&world, ties),
        ));
        twins
    })
}

/// Sharded views over each compressed index: the unsharded degenerate
/// (1), even and odd partitions, and a count that leaves some shards
/// without matches for rare terms.
fn sharded_compressed() -> &'static Vec<Vec<SearchEngine>> {
    static SHARDED: OnceLock<Vec<Vec<SearchEngine>>> = OnceLock::new();
    SHARDED.get_or_init(|| {
        twins()
            .iter()
            .map(|(_, compressed)| {
                [1usize, 2, 3, 7]
                    .into_iter()
                    .map(|count| {
                        let view = ShardedIndex::build(compressed.index_handle(), count);
                        SearchEngine::with_sharded_index(
                            Arc::new(view),
                            compressed.params().clone(),
                        )
                    })
                    .collect()
            })
            .collect()
    })
}

/// Full structural equality with bit-exact scores.
fn assert_serp_identical(got: &Serp, want: &Serp) {
    assert_eq!(got.query, want.query);
    assert_eq!(
        got.results.len(),
        want.results.len(),
        "result counts differ"
    );
    for (i, (a, b)) in got.results.iter().zip(&want.results).enumerate() {
        assert_eq!(a.url, b.url, "url diverges at rank {i}");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score diverges at rank {i}: {} vs {}",
            a.score,
            b.score
        );
        assert_eq!(a.page, b.page, "page diverges at rank {i}");
        assert_eq!(a.host, b.host, "host diverges at rank {i}");
        assert_eq!(a.title, b.title, "title diverges at rank {i}");
        assert_eq!(a.snippet, b.snippet, "snippet diverges at rank {i}");
        assert_eq!(a.source_type, b.source_type);
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
    }
}

/// The compressed engine's pruned and exhaustive modes must both match
/// the raw engine's pruned SERP and the reference oracle byte-for-byte.
fn assert_compressed_matches_raw(which: usize, q: &str, k: usize) {
    let (raw, compressed) = &twins()[which];
    let base = raw.search(q, k);
    let oracle = reference::search(raw, q, k);
    let pruned = compressed.search(q, k);
    let exhaustive =
        compressed.search_with_mode(&mut QueryScratch::new(), q, k, EvalMode::Exhaustive);
    assert_serp_identical(&base, &oracle);
    assert_serp_identical(&pruned, &oracle);
    assert_serp_identical(&exhaustive, &oracle);
}

/// Query strings mixing realistic templates (which hit many postings,
/// including duplicate terms) with arbitrary junk.
fn query() -> impl Strategy<Value = String> {
    prop_oneof![
        (
            prop_oneof![
                Just("best"),
                Just("top 10"),
                Just("most reliable"),
                Just("buy"),
                Just("review"),
            ],
            prop_oneof![
                Just("smartphones"),
                Just("laptops"),
                Just("SUVs"),
                Just("hotels"),
                Just("credit cards"),
                Just("espresso machines"),
                Just("smartwatches battery"),
            ],
            prop_oneof![
                Just(""),
                Just(" 2025"),
                Just(" for students"),
                Just(" battery battery"), // duplicate query terms
            ],
        )
            .prop_map(|(a, b, c)| format!("{a} {b}{c}")),
        "\\PC{0,48}",
    ]
}

/// Single-term queries: with one cursor every pruning decision is a
/// block-bound test, the pure block-max + block-decode seek path.
fn single_term_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("best".to_string()),
        Just("laptops".to_string()),
        Just("battery".to_string()),
        Just("review".to_string()),
        Just("hotels".to_string()),
        Just("2025".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compressed pruned, compressed exhaustive, raw pruned and the
    /// reference oracle agree byte-for-byte on every twin, query and k.
    #[test]
    fn compressed_matches_raw_and_oracle(q in query(), k in 0usize..25, which in 0usize..5) {
        assert_compressed_matches_raw(which, &q, k);
    }

    /// Overfetch larger than the matching set: the compressed kernel
    /// degrades to an exhaustive merge (every block decoded in order)
    /// without dropping or reordering anything.
    #[test]
    fn compressed_k_at_or_beyond_matching_docs(q in query(), k in 500usize..2000, which in 0usize..5) {
        assert_compressed_matches_raw(which, &q, k);
    }

    /// Single-term queries exercise pure block-max skipping over packed
    /// blocks — every seek is a summary walk plus one block decode.
    #[test]
    fn compressed_single_term_queries_match(q in single_term_query(), k in 1usize..40, which in 0usize..5) {
        assert_compressed_matches_raw(which, &q, k);
    }

    /// The tie-dense twin: equal-score clusters straddle the heap
    /// threshold, so any off-by-one-posting seek error in the packed
    /// cursors surfaces as a reordered tie. Must survive bit-for-bit.
    #[test]
    fn compressed_tie_clusters_survive(q in single_term_query(), k in 1usize..60) {
        assert_compressed_matches_raw(4, &q, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharding a compressed index is invisible: every shard count,
    /// both fan-out disciplines and both modes reproduce the raw
    /// unsharded pruned SERP byte-for-byte. Shard boundaries cut
    /// through the middle of packed blocks, so this exercises the
    /// partial-block subrange path on every shard edge.
    #[test]
    fn sharded_compressed_matches_raw(q in query(), k in 0usize..25, which in 0usize..5) {
        let base = twins()[which].0.search(&q, k);
        for sharded in &sharded_compressed()[which] {
            let mut scratch = QueryScratch::new();
            let parallel = sharded.search_with(&mut scratch, &q, k);
            let serial = sharded.search_with_mode_serial(&mut scratch, &q, k, EvalMode::Pruned);
            let exhaustive = sharded.search_with_mode(&mut scratch, &q, k, EvalMode::Exhaustive);
            assert_serp_identical(&parallel, &base);
            assert_serp_identical(&serial, &base);
            assert_serp_identical(&exhaustive, &base);
        }
    }
}

/// The paper-artifact scale: the committed query templates on the full
/// ≈2k-page world, raw vs compressed, pruned and exhaustive. A single
/// larger-scale anchor on top of the small-world property sweeps.
#[test]
fn paper_scale_compressed_matches_raw() {
    let world = World::generate(&WorldConfig::paper(), 20251101);
    let raw = SearchEngine::build(&world, RankingParams::google());
    let compressed = SearchEngine::build_compressed(&world, RankingParams::google());
    assert!(compressed.index().is_compressed());
    assert!(!raw.index().is_compressed());
    for q in [
        "best laptops for students",
        "best smartphones camera battery",
        "top 10 hotels 2025",
        "review espresso machines",
        "most reliable SUVs",
        "battery",
    ] {
        for k in [1usize, 10, 100] {
            let base = raw.search(q, k);
            assert_serp_identical(&compressed.search(q, k), &base);
            let exhaustive =
                compressed.search_with_mode(&mut QueryScratch::new(), q, k, EvalMode::Exhaustive);
            assert_serp_identical(&exhaustive, &base);
        }
    }
    // The compressed layout actually compresses: held bytes stay well
    // under the raw-layout extrapolation for the same index.
    let stats = compressed.index().stats();
    assert!(stats.compressed_bytes < stats.raw_bytes);
    assert!(
        stats.ratio() < 0.6,
        "expected a real size win, got ratio {:.3}",
        stats.ratio()
    );
}

/// More shards than documents on the compressed index: trailing shards
/// own empty ranges and must merge away without a trace.
#[test]
fn compressed_empty_shards_merge_away() {
    let (raw, compressed) = &twins()[0];
    let docs = compressed.index().postings().doc_count() as usize;
    let view = ShardedIndex::build(compressed.index_handle(), docs + 5);
    let sharded = SearchEngine::with_sharded_index(Arc::new(view), compressed.params().clone());
    for q in ["best laptops for students", "review", "the of and"] {
        for k in [1usize, 10, 100] {
            assert_serp_identical(&sharded.search(q, k), &raw.search(q, k));
        }
    }
}

/// The doc-metadata dictionary round-trips every field: raw and
/// compact stores agree on url, host, title, body and numerics for
/// every document in the world.
#[test]
fn doc_metadata_dictionary_roundtrips() {
    let world = World::generate(&WorldConfig::small(), 4040);
    let raw = SearchEngine::build(&world, RankingParams::google());
    let compressed = SearchEngine::build_compressed(&world, RankingParams::google());
    let n = raw.index().postings().doc_count();
    assert_eq!(n, compressed.index().postings().doc_count());
    for doc in 0..n {
        let a = raw.index().doc_fields(doc);
        let b = compressed.index().doc_fields(doc);
        assert_eq!(a.url, b.url, "url diverges at doc {doc}");
        assert_eq!(a.host, b.host);
        assert_eq!(a.host_id, b.host_id);
        assert_eq!(a.page, b.page);
        assert_eq!(a.title, b.title);
        assert_eq!(a.body, b.body);
        assert_eq!(a.token_len, b.token_len);
        assert_eq!(a.title_len, b.title_len);
        assert_eq!(a.authority.to_bits(), b.authority.to_bits());
        assert_eq!(a.age_days.to_bits(), b.age_days.to_bits());
        assert_eq!(a.source_type, b.source_type);
    }
}
