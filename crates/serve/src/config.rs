//! Service configuration.

use std::time::Duration;

use crate::cache::CacheConfig;
use crate::resilience::ResilienceConfig;

/// Tunables for one [`crate::AnswerService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing answers.
    pub workers: usize,
    /// Bounded depth of the admission queue; a full queue rejects with
    /// [`crate::ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Per-request deadline, measured from admission.
    pub deadline: Duration,
    /// Upper bound on the micro-batch a worker drains from the
    /// admission queue in one go (1 disables batching). Batching is
    /// deadline-safe by construction: a worker only *takes* jobs that
    /// are already queued — it never waits for the batch to fill — so
    /// no job is served later than it would have been unbatched.
    pub batch_max: usize,
    /// Answer-cache geometry; `CacheConfig::disabled()` turns caching off.
    pub cache: CacheConfig,
    /// Retry / breaker / degradation policy;
    /// `ResilienceConfig::disabled()` restores the fail-hard behaviour.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            batch_max: 8,
            cache: CacheConfig::default(),
            resilience: ResilienceConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    /// Same configuration with the cache turned off (every request is
    /// computed; used for cold-path baselines and identity tests).
    pub fn without_cache(mut self) -> ServeConfig {
        self.cache = CacheConfig::disabled();
        self
    }

    /// Same configuration with resilience turned off: one attempt per
    /// request, no breaker, no degradation.
    pub fn without_resilience(mut self) -> ServeConfig {
        self.resilience = ResilienceConfig::disabled();
        self
    }

    /// Same configuration with micro-batching turned off: workers take
    /// exactly one job per queue pop.
    pub fn without_batching(mut self) -> ServeConfig {
        self.batch_max = 1;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::ServeConfig;

    #[test]
    fn default_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= c.workers);
        assert!(c.cache.capacity_per_shard > 0);
        assert!(c.batch_max >= 1);
    }

    #[test]
    fn without_batching_takes_one_job_per_pop() {
        let c = ServeConfig::default().without_batching();
        assert_eq!(c.batch_max, 1);
        assert!(ServeConfig::default().batch_max > 1);
    }

    #[test]
    fn without_cache_disables() {
        let c = ServeConfig::with_workers(2).without_cache();
        assert_eq!(c.workers, 2);
        assert_eq!(c.cache.capacity_per_shard, 0);
    }

    #[test]
    fn without_resilience_disables() {
        let c = ServeConfig::default().without_resilience();
        assert!(!c.resilience.enabled);
        assert!(ServeConfig::default().resilience.enabled);
    }
}
