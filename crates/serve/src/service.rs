//! The answer service: a fixed worker pool behind a bounded admission
//! queue, with a cache fast path, per-request deadlines, and graceful
//! drain shutdown.
//!
//! Life of a request:
//!
//! 1. [`AnswerService::submit`] builds the [`crate::CacheKey`]; a cache
//!    hit resolves immediately without touching the queue.
//! 2. On a miss the request is `try_send`-ed onto the bounded job
//!    channel. A full channel rejects with [`ServeError::Overloaded`] —
//!    the service sheds load instead of queueing unboundedly.
//! 3. A worker pops the job. If the deadline already passed it replies
//!    [`ServeError::TimedOut`] without computing; otherwise it runs the
//!    engine, populates the cache, and replies.
//! 4. The caller blocks in [`PendingAnswer::wait`] with a deadline-capped
//!    `recv_timeout`, so a stuck request costs the caller at most the
//!    deadline.
//!
//! [`AnswerService::shutdown`] closes admission, lets the workers drain
//! every queued job, joins them, and returns the final metrics snapshot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use shift_engines::{AnswerEngines, EngineAnswer, EngineKind, QueryScratch};

use crate::cache::{AnswerCache, CacheKey};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::ServiceMetrics;
use crate::report::MetricsSnapshot;

/// One answer request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Engine to answer with.
    pub engine: EngineKind,
    /// Query text.
    pub query: String,
    /// Answer depth (top-k results / citation budget).
    pub top_k: usize,
    /// Decode seed (determinism handle; ignored by Google).
    pub seed: u64,
}

impl Request {
    /// Build a request.
    pub fn new(engine: EngineKind, query: &str, top_k: usize, seed: u64) -> Request {
        Request {
            engine,
            query: query.to_string(),
            top_k,
            seed,
        }
    }
}

/// A successfully served answer.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The engine's answer.
    pub answer: EngineAnswer,
    /// End-to-end latency from admission to completion (queueing
    /// included).
    pub latency: Duration,
    /// Whether the answer came from the cache.
    pub from_cache: bool,
}

type Reply = Result<ServedAnswer, ServeError>;

struct Job {
    request: Request,
    key: CacheKey,
    admitted: Instant,
    deadline: Instant,
    reply: Sender<Reply>,
    // One-shot outcome flag shared with the waiter: whichever side first
    // flips it owns the metrics record for this request, so a reply that
    // lands just as the waiter times out is never counted twice.
    settled: Arc<AtomicBool>,
}

/// A submitted request whose answer may still be in flight.
///
/// Dropping a `PendingAnswer` abandons the request; the worker's reply is
/// discarded (the cache still keeps the computed answer).
pub struct PendingAnswer {
    rx: Receiver<Reply>,
    deadline: Instant,
    metrics: Arc<ServiceMetrics>,
    settled: Arc<AtomicBool>,
}

impl PendingAnswer {
    /// Block until the answer arrives or the deadline passes.
    pub fn wait(self) -> Result<ServedAnswer, ServeError> {
        let budget = self.deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(budget) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => {
                if !self.settled.swap(true, Ordering::AcqRel) {
                    self.metrics.record_timed_out();
                }
                Err(ServeError::TimedOut)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }
}

/// A running answer service. Cheap to share by reference across client
/// threads; [`AnswerService::shutdown`] consumes it.
pub struct AnswerService {
    engines: Arc<AnswerEngines>,
    cache: Arc<AnswerCache>,
    metrics: Arc<ServiceMetrics>,
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    deadline: Duration,
}

impl AnswerService {
    /// Spawn the worker pool and start accepting requests.
    pub fn start(engines: Arc<AnswerEngines>, config: ServeConfig) -> AnswerService {
        let cache = Arc::new(AnswerCache::new(&config.cache));
        let metrics = Arc::new(ServiceMetrics::new());
        let (tx, rx) = channel::bounded::<Job>(config.queue_depth.max(1));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let engines = Arc::clone(&engines);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&engines, &cache, &metrics, &rx))
            })
            .collect();
        AnswerService {
            engines,
            cache,
            metrics,
            tx,
            workers,
            deadline: config.deadline,
        }
    }

    /// Submit a request without blocking on the answer.
    ///
    /// Returns [`ServeError::Overloaded`] when the admission queue is
    /// full; a cache hit resolves the returned [`PendingAnswer`]
    /// immediately.
    pub fn submit(&self, request: Request) -> Result<PendingAnswer, ServeError> {
        let admitted = Instant::now();
        let deadline = admitted + self.deadline;
        let key = CacheKey::new(request.engine, &request.query, request.top_k, request.seed);
        let (reply_tx, reply_rx) = channel::bounded::<Reply>(1);
        let settled = Arc::new(AtomicBool::new(false));
        if let Some(answer) = self.cache.get(&key) {
            let latency = admitted.elapsed();
            settled.store(true, Ordering::Release);
            self.metrics.record_served(request.engine, latency, true);
            let _ = reply_tx.send(Ok(ServedAnswer {
                answer,
                latency,
                from_cache: true,
            }));
            return Ok(PendingAnswer {
                rx: reply_rx,
                deadline,
                metrics: Arc::clone(&self.metrics),
                settled,
            });
        }
        let job = Job {
            request,
            key,
            admitted,
            deadline,
            reply: reply_tx,
            settled: Arc::clone(&settled),
        };
        match self.tx.try_send(job) {
            Ok(()) => Ok(PendingAnswer {
                rx: reply_rx,
                deadline,
                metrics: Arc::clone(&self.metrics),
                settled,
            }),
            Err(TrySendError::Full(_)) => {
                self.metrics.record_overloaded();
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit and block until the answer (or a typed failure) arrives.
    pub fn answer(&self, request: Request) -> Result<ServedAnswer, ServeError> {
        self.submit(request)?.wait()
    }

    /// Live metrics (percentiles computed on the spot).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats())
    }

    /// The shared answer cache (for tests and warm-up).
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The engine stack this service fronts.
    pub fn engines(&self) -> &Arc<AnswerEngines> {
        &self.engines
    }

    /// Stop admitting, drain every queued job, join the workers, and
    /// return the final metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        let AnswerService {
            cache,
            metrics,
            tx,
            workers,
            ..
        } = self;
        // Dropping the only Sender disconnects the channel; workers keep
        // receiving until the queue is empty, then exit.
        drop(tx);
        for handle in workers {
            let _ = handle.join();
        }
        metrics.snapshot(cache.stats())
    }
}

fn worker_loop(
    engines: &AnswerEngines,
    cache: &AnswerCache,
    metrics: &ServiceMetrics,
    rx: &Receiver<Job>,
) {
    // One retrieval scratch per worker, reused for the worker's whole
    // lifetime: steady-state uncached requests run the search kernel
    // without allocating working memory.
    let mut scratch = QueryScratch::new();
    while let Ok(job) = rx.recv() {
        if Instant::now() >= job.deadline {
            // Too late to be useful; don't burn engine time.
            if !job.settled.swap(true, Ordering::AcqRel) {
                metrics.record_timed_out();
            }
            let _ = job.reply.send(Err(ServeError::TimedOut));
            continue;
        }
        let answer = engines.answer_with(
            &mut scratch,
            job.request.engine,
            &job.request.query,
            job.request.top_k,
            job.request.seed,
        );
        // Cache even if the waiter gave up — the work is done either way.
        cache.insert(job.key, answer.clone());
        let latency = job.admitted.elapsed();
        if !job.settled.swap(true, Ordering::AcqRel) {
            metrics.record_served(job.request.engine, latency, false);
        }
        let _ = job.reply.send(Ok(ServedAnswer {
            answer,
            latency,
            from_cache: false,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::{World, WorldConfig};

    fn engines() -> Arc<AnswerEngines> {
        let world = Arc::new(World::generate(&WorldConfig::small(), 97));
        Arc::new(AnswerEngines::build(world))
    }

    #[test]
    fn serves_and_caches() {
        let service = AnswerService::start(engines(), ServeConfig::with_workers(2));
        let req = Request::new(EngineKind::Gpt4o, "best phone under 500", 10, 11);
        let first = service.answer(req.clone()).expect("first answer");
        assert!(!first.from_cache);
        let second = service.answer(req).expect("second answer");
        assert!(second.from_cache, "repeat must hit the cache");
        assert_eq!(first.answer.text, second.answer.text);
        assert_eq!(first.answer.citations.len(), second.answer.citations.len());
        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.cache_hits_served, 1);
    }

    #[test]
    fn zero_deadline_times_out() {
        let mut config = ServeConfig::with_workers(1);
        config.deadline = Duration::ZERO;
        let service = AnswerService::start(engines(), config);
        let err = service
            .answer(Request::new(EngineKind::Claude, "instant deadline", 10, 1))
            .expect_err("must time out");
        assert_eq!(err, ServeError::TimedOut);
        let snap = service.shutdown();
        assert_eq!(snap.timed_out, 1, "timeout must be counted exactly once");
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn flood_rejects_with_overloaded() {
        let mut config = ServeConfig::with_workers(1).without_cache();
        config.queue_depth = 2;
        let service = AnswerService::start(engines(), config);
        let mut pending = Vec::new();
        let mut overloaded = 0;
        for i in 0..128 {
            let req = Request::new(EngineKind::Gemini, &format!("flood query {i}"), 10, i);
            match service.submit(req) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded) => overloaded += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(
            overloaded > 0,
            "a 2-deep queue behind 1 worker must shed some of 128 instant submits"
        );
        for p in pending {
            p.wait().expect("admitted requests complete");
        }
        let snap = service.shutdown();
        assert_eq!(snap.overloaded, overloaded);
        assert_eq!(snap.completed + snap.overloaded, 128);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = AnswerService::start(engines(), ServeConfig::with_workers(2));
        let mut pending = Vec::new();
        for i in 0..8 {
            let req = Request::new(EngineKind::Perplexity, &format!("drain {i}"), 10, i);
            pending.push(service.submit(req).expect("queue fits 8"));
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 8, "shutdown must drain, not drop");
        for p in pending {
            p.wait().expect("drained answers are delivered");
        }
    }
}
