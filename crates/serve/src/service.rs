//! The answer service: a fixed worker pool behind a bounded admission
//! queue, with a cache fast path, per-request deadlines, resilience
//! (retries, circuit breakers, degradation), and graceful drain shutdown.
//!
//! Life of a request:
//!
//! 1. [`AnswerService::submit`] builds the [`crate::CacheKey`]; a fresh
//!    cache hit resolves immediately without touching the queue.
//! 2. On a miss the request is `try_send`-ed onto the bounded job
//!    channel. A full channel rejects with [`ServeError::Overloaded`] —
//!    the service sheds load instead of queueing unboundedly.
//! 3. A worker pops the job. If the deadline already passed it replies
//!    [`ServeError::TimedOut`] without computing; otherwise it runs the
//!    resilience ladder:
//!
//!    * consult the engine's [`CircuitBreaker`](crate::resilience::CircuitBreaker)
//!      — an open breaker skips the engine entirely;
//!    * attempt the engine through [`FallibleEngines`], retrying failed
//!      attempts with seeded jittered backoff, but only while the backoff
//!      fits in the remaining deadline budget (zero budget ⇒ zero
//!      retries) and the failure looks retryable;
//!    * on exhaustion, degrade: serve a stale cache entry (enqueueing a
//!      background refresh — stale-while-revalidate), else the Google
//!      organic SERP as a citation-only answer, tagging the served answer
//!      with its [`Degradation`] level.
//! 4. The caller blocks in [`PendingAnswer::wait`] with a deadline-capped
//!    `recv_timeout`, so a stuck request costs the caller at most the
//!    deadline.
//!
//! A request is counted exactly once no matter how many attempts it took:
//! the `settled` flag arbitrates metrics ownership between worker and
//! waiter, and per-attempt events land in separate `retries` /
//! `engine_failures` counters.
//!
//! [`AnswerService::shutdown`] closes admission, lets the workers drain
//! every queued job (and pending background refreshes), joins them, and
//! returns the final metrics snapshot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use shift_engines::{
    AnswerEngines, EngineAnswer, EngineError, EngineKind, FallibleEngines, FaultInjector,
    QueryScratch,
};

use crate::cache::{AnswerCache, CacheKey};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::ServiceMetrics;
use crate::report::MetricsSnapshot;
use crate::resilience::{retry_backoff, Admission, BreakerSet, Degradation, ResilienceConfig};

/// One answer request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Engine to answer with.
    pub engine: EngineKind,
    /// Query text.
    pub query: String,
    /// Answer depth (top-k results / citation budget).
    pub top_k: usize,
    /// Decode seed (determinism handle; ignored by Google).
    pub seed: u64,
}

impl Request {
    /// Build a request.
    pub fn new(engine: EngineKind, query: &str, top_k: usize, seed: u64) -> Request {
        Request {
            engine,
            query: query.to_string(),
            top_k,
            seed,
        }
    }
}

/// A successfully served answer.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The engine's answer.
    pub answer: EngineAnswer,
    /// End-to-end latency from admission to completion (queueing
    /// included).
    pub latency: Duration,
    /// Whether the answer came from the fresh-cache fast path. A stale
    /// serve is tagged through `degradation`, not here.
    pub from_cache: bool,
    /// How far down the degradation ladder this answer came from.
    pub degradation: Degradation,
}

type Reply = Result<ServedAnswer, ServeError>;

struct Job {
    request: Request,
    key: CacheKey,
    admitted: Instant,
    deadline: Instant,
    reply: Sender<Reply>,
    // One-shot outcome flag shared with the waiter: whichever side first
    // flips it owns the metrics record for this request, so a reply that
    // lands just as the waiter times out is never counted twice.
    settled: Arc<AtomicBool>,
}

/// A stale-while-revalidate background recompute, enqueued when a stale
/// entry is served, drained by workers between (and after) foreground
/// jobs.
struct RefreshJob {
    request: Request,
    key: CacheKey,
}

/// Depth of the background-refresh queue; overflow drops the refresh
/// (the stale entry simply stays stale).
const REFRESH_QUEUE_DEPTH: usize = 256;

/// Attempt salt for background refreshes: a refresh of a request that
/// just failed must not replay the identical fault draws of attempts
/// 0..=max_retries, or it would deterministically fail the same way.
const REFRESH_ATTEMPT: u32 = 0x5246_5253;

/// A submitted request whose answer may still be in flight.
///
/// Dropping a `PendingAnswer` abandons the request; the worker's reply is
/// discarded (the cache still keeps the computed answer).
pub struct PendingAnswer {
    rx: Receiver<Reply>,
    deadline: Instant,
    metrics: Arc<ServiceMetrics>,
    settled: Arc<AtomicBool>,
}

impl PendingAnswer {
    /// Block until the answer arrives or the deadline passes.
    pub fn wait(self) -> Result<ServedAnswer, ServeError> {
        let budget = self.deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(budget) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => {
                if !self.settled.swap(true, Ordering::AcqRel) {
                    self.metrics.record_timed_out();
                }
                Err(ServeError::TimedOut)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }
}

/// Everything a worker thread needs, shared across the pool.
struct WorkerCtx {
    fallible: Arc<dyn FallibleEngines>,
    cache: Arc<AnswerCache>,
    metrics: Arc<ServiceMetrics>,
    breakers: Arc<BreakerSet>,
    resilience: ResilienceConfig,
    refresh_tx: Sender<RefreshJob>,
    refresh_rx: Receiver<RefreshJob>,
    batch_max: usize,
}

/// A running answer service. Cheap to share by reference across client
/// threads; [`AnswerService::shutdown`] consumes it.
pub struct AnswerService {
    engines: Arc<AnswerEngines>,
    cache: Arc<AnswerCache>,
    metrics: Arc<ServiceMetrics>,
    breakers: Arc<BreakerSet>,
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    deadline: Duration,
}

impl AnswerService {
    /// Spawn the worker pool over an infallible engine stack (production
    /// configuration: the resilience machinery is armed but no faults are
    /// ever injected).
    pub fn start(engines: Arc<AnswerEngines>, config: ServeConfig) -> AnswerService {
        let fallible: Arc<dyn FallibleEngines> = engines.clone();
        AnswerService::start_fallible(engines, fallible, config)
    }

    /// Spawn the worker pool over a [`FaultInjector`] (chaos
    /// configuration): every attempt consults the injector's fault plan.
    pub fn start_chaos(injector: FaultInjector, config: ServeConfig) -> AnswerService {
        let engines = injector.stack_handle();
        AnswerService::start_fallible(engines, Arc::new(injector), config)
    }

    /// Spawn the worker pool over an arbitrary [`FallibleEngines`] front.
    /// `engines` must be the stack `fallible` delegates to (used for
    /// workload construction and the SERP degradation fallback).
    pub fn start_fallible(
        engines: Arc<AnswerEngines>,
        fallible: Arc<dyn FallibleEngines>,
        config: ServeConfig,
    ) -> AnswerService {
        let cache = Arc::new(AnswerCache::new(&config.cache));
        let metrics = Arc::new(ServiceMetrics::new());
        let breakers = Arc::new(BreakerSet::new(&config.resilience));
        let (tx, rx) = channel::bounded::<Job>(config.queue_depth.max(1));
        let (refresh_tx, refresh_rx) = channel::bounded::<RefreshJob>(REFRESH_QUEUE_DEPTH);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let ctx = WorkerCtx {
                    fallible: Arc::clone(&fallible),
                    cache: Arc::clone(&cache),
                    metrics: Arc::clone(&metrics),
                    breakers: Arc::clone(&breakers),
                    resilience: config.resilience.clone(),
                    refresh_tx: refresh_tx.clone(),
                    refresh_rx: refresh_rx.clone(),
                    batch_max: config.batch_max.max(1),
                };
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&ctx, &rx))
            })
            .collect();
        AnswerService {
            engines,
            cache,
            metrics,
            breakers,
            tx,
            workers,
            deadline: config.deadline,
        }
    }

    /// Submit a request without blocking on the answer.
    ///
    /// Returns [`ServeError::Overloaded`] when the admission queue is
    /// full; a cache hit resolves the returned [`PendingAnswer`]
    /// immediately.
    pub fn submit(&self, request: Request) -> Result<PendingAnswer, ServeError> {
        let admitted = Instant::now();
        let deadline = admitted + self.deadline;
        let key = CacheKey::new(request.engine, &request.query, request.top_k, request.seed);
        let (reply_tx, reply_rx) = channel::bounded::<Reply>(1);
        let settled = Arc::new(AtomicBool::new(false));
        if let Some(answer) = self.cache.get(&key) {
            let latency = admitted.elapsed();
            settled.store(true, Ordering::Release);
            self.metrics
                .record_served(request.engine, latency, true, Degradation::None);
            let _ = reply_tx.send(Ok(ServedAnswer {
                answer,
                latency,
                from_cache: true,
                degradation: Degradation::None,
            }));
            return Ok(PendingAnswer {
                rx: reply_rx,
                deadline,
                metrics: Arc::clone(&self.metrics),
                settled,
            });
        }
        let job = Job {
            request,
            key,
            admitted,
            deadline,
            reply: reply_tx,
            settled: Arc::clone(&settled),
        };
        match self.tx.try_send(job) {
            Ok(()) => Ok(PendingAnswer {
                rx: reply_rx,
                deadline,
                metrics: Arc::clone(&self.metrics),
                settled,
            }),
            Err(TrySendError::Full(_)) => {
                self.metrics.record_overloaded();
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit and block until the answer (or a typed failure) arrives.
    pub fn answer(&self, request: Request) -> Result<ServedAnswer, ServeError> {
        self.submit(request)?.wait()
    }

    /// Live metrics (percentiles computed on the spot).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.cache.stats(),
            self.engines.serp_cache_stats(),
            self.engines.single_flight_stats(),
        )
    }

    /// The shared answer cache (for tests and warm-up).
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The engine stack this service fronts.
    pub fn engines(&self) -> &Arc<AnswerEngines> {
        &self.engines
    }

    /// The per-engine circuit breakers (observability and tests).
    pub fn breakers(&self) -> &BreakerSet {
        &self.breakers
    }

    /// Stop admitting, drain every queued job, join the workers, and
    /// return the final metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        let AnswerService {
            engines,
            cache,
            metrics,
            tx,
            workers,
            ..
        } = self;
        // Dropping the only Sender disconnects the channel; workers keep
        // receiving until the queue is empty, then exit.
        drop(tx);
        for handle in workers {
            let _ = handle.join();
        }
        metrics.snapshot(
            cache.stats(),
            engines.serp_cache_stats(),
            engines.single_flight_stats(),
        )
    }
}

fn worker_loop(ctx: &WorkerCtx, rx: &Receiver<Job>) {
    // One retrieval scratch per worker, reused for the worker's whole
    // lifetime: steady-state uncached requests run the search kernel
    // without allocating working memory.
    let mut scratch = QueryScratch::new();
    let mut batch: Vec<Job> = Vec::with_capacity(ctx.batch_max);
    while let Ok(job) = rx.recv() {
        // Micro-batch drain: after the blocking pop, opportunistically
        // take whatever is *already* queued, up to `batch_max`. The
        // drain never waits for more jobs (no deadline risk — a job is
        // never served later than it would have been unbatched), it
        // just keeps this worker's index references, scratch and the
        // SERP cache's freshly inserted entries hot across the run of
        // jobs that queued up behind one another under load.
        batch.push(job);
        while batch.len() < ctx.batch_max {
            match rx.try_recv() {
                Ok(next) => batch.push(next),
                Err(_) => break,
            }
        }
        ctx.metrics.record_batch(batch.len() as u64);
        // Serve strictly in admission order: latency fairness, and the
        // order replies settle is exactly the unbatched order.
        for job in batch.drain(..) {
            serve_job(ctx, &mut scratch, job);
            ctx.metrics.record_kernel(scratch.take_stats());
        }
        // Foreground jobs take priority; between batches, work off at
        // most one pending stale-while-revalidate refresh.
        if let Ok(refresh) = ctx.refresh_rx.try_recv() {
            run_refresh(ctx, &mut scratch, &refresh);
            ctx.metrics.record_kernel(scratch.take_stats());
        }
    }
    // Admission is closed and the queue is drained: finish the refresh
    // backlog so stale entries enqueued late still get revalidated.
    while let Ok(refresh) = ctx.refresh_rx.try_recv() {
        run_refresh(ctx, &mut scratch, &refresh);
        ctx.metrics.record_kernel(scratch.take_stats());
    }
}

fn serve_job(ctx: &WorkerCtx, scratch: &mut QueryScratch, job: Job) {
    if Instant::now() >= job.deadline {
        // Too late to be useful; don't burn engine time.
        if !job.settled.swap(true, Ordering::AcqRel) {
            ctx.metrics.record_timed_out();
        }
        let _ = job.reply.send(Err(ServeError::TimedOut));
        return;
    }
    match resolve(ctx, scratch, &job) {
        Ok((answer, degradation)) => {
            if degradation == Degradation::None {
                // Cache only full-fidelity answers (even if the waiter
                // gave up — the work is done either way). A degraded
                // answer must not masquerade as the engine's.
                ctx.cache.insert(job.key, answer.clone());
            }
            let latency = job.admitted.elapsed();
            // Exactly one served record per request, however many
            // attempts it took; the waiter may have claimed a timeout.
            if !job.settled.swap(true, Ordering::AcqRel) {
                ctx.metrics
                    .record_served(job.request.engine, latency, false, degradation);
            }
            let _ = job.reply.send(Ok(ServedAnswer {
                answer,
                latency,
                from_cache: false,
                degradation,
            }));
        }
        Err(err) => {
            if !job.settled.swap(true, Ordering::AcqRel) {
                ctx.metrics.record_failed();
            }
            let _ = job.reply.send(Err(err));
        }
    }
}

/// The resilience ladder for one admitted, in-deadline request: breaker →
/// budgeted retries → stale cache → organic SERP.
fn resolve(
    ctx: &WorkerCtx,
    scratch: &mut QueryScratch,
    job: &Job,
) -> Result<(EngineAnswer, Degradation), ServeError> {
    let req = &job.request;
    if !ctx.resilience.enabled {
        // Fail-hard path: one attempt, no breaker, no degradation.
        return match ctx
            .fallible
            .try_answer_with(scratch, req.engine, &req.query, req.top_k, req.seed, 0)
        {
            Ok(answer) => Ok((answer, Degradation::None)),
            Err(_) => {
                ctx.metrics.record_engine_failure();
                Err(ServeError::EngineFailed { engine: req.engine })
            }
        };
    }

    let breaker = ctx.breakers.of(req.engine);
    let admission = breaker.admit();
    let mut breaker_rejected = false;
    if admission == Admission::Reject {
        ctx.metrics.record_breaker_rejection();
        breaker_rejected = true;
    } else {
        let probing = admission == Admission::Probe;
        let mut attempt: u32 = 0;
        loop {
            match ctx.fallible.try_answer_with(
                scratch, req.engine, &req.query, req.top_k, req.seed, attempt,
            ) {
                Ok(answer) => {
                    breaker.record_success();
                    return Ok((answer, Degradation::None));
                }
                Err(err) => {
                    ctx.metrics.record_engine_failure();
                    breaker.record_failure();
                    // Stop retrying when: this was the one half-open
                    // probe; the engine is in an outage window (every
                    // attempt of this request fails identically); the
                    // failure just tripped the breaker; or the retry
                    // budget is spent.
                    if probing
                        || err == EngineError::Unavailable
                        || !breaker.is_closed()
                        || attempt >= ctx.resilience.max_retries
                    {
                        break;
                    }
                    let backoff = retry_backoff(&ctx.resilience, req.seed, attempt + 1);
                    let remaining = job.deadline.saturating_duration_since(Instant::now());
                    // Never borrow against time we don't have: if the
                    // backoff would not fit in the remaining deadline
                    // budget, degrading now beats timing out later.
                    // `backoff >= remaining` also proves the zero-budget
                    // ⇒ zero-retries guarantee (backoff ≥ 0 always).
                    if backoff >= remaining {
                        break;
                    }
                    ctx.metrics.record_retry();
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        }
    }

    // Degradation ladder, rung 1: serve the stale cache entry and queue a
    // background revalidation.
    if ctx.resilience.degrade_to_stale {
        if let Some(answer) = ctx.cache.get_stale(&job.key) {
            let _ = ctx.refresh_tx.try_send(RefreshJob {
                request: req.clone(),
                key: job.key.clone(),
            });
            return Ok((answer, Degradation::Stale));
        }
    }
    // Rung 2: the organic Google SERP as a citation-only answer, computed
    // on the infallible stack (the production search index is local — it
    // does not share the remote engines' failure modes).
    if ctx.resilience.degrade_to_serp {
        let answer = ctx.fallible.stack().answer_with(
            scratch,
            EngineKind::Google,
            &req.query,
            req.top_k,
            req.seed,
        );
        return Ok((answer, Degradation::SerpFallback));
    }
    Err(if breaker_rejected {
        ServeError::BreakerOpen { engine: req.engine }
    } else if ctx.resilience.degrade_to_stale {
        ServeError::DegradedUnavailable { engine: req.engine }
    } else {
        ServeError::EngineFailed { engine: req.engine }
    })
}

/// Recompute a stale entry in the background (one attempt, salted so it
/// does not replay the foreground attempts' fault draws).
fn run_refresh(ctx: &WorkerCtx, scratch: &mut QueryScratch, refresh: &RefreshJob) {
    let req = &refresh.request;
    if let Ok(answer) = ctx.fallible.try_answer_with(
        scratch,
        req.engine,
        &req.query,
        req.top_k,
        req.seed,
        REFRESH_ATTEMPT,
    ) {
        ctx.cache.insert(refresh.key.clone(), answer);
        ctx.metrics.record_refresh();
    }
    // A failed refresh just leaves the stale entry in place; the next
    // stale serve will queue another one.
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::{World, WorldConfig};

    fn engines() -> Arc<AnswerEngines> {
        let world = Arc::new(World::generate(&WorldConfig::small(), 97));
        Arc::new(AnswerEngines::build(world))
    }

    #[test]
    fn serves_and_caches() {
        let service = AnswerService::start(engines(), ServeConfig::with_workers(2));
        let req = Request::new(EngineKind::Gpt4o, "best phone under 500", 10, 11);
        let first = service.answer(req.clone()).expect("first answer");
        assert!(!first.from_cache);
        assert_eq!(first.degradation, Degradation::None);
        let second = service.answer(req).expect("second answer");
        assert!(second.from_cache, "repeat must hit the cache");
        assert_eq!(first.answer.text, second.answer.text);
        assert_eq!(first.answer.citations.len(), second.answer.citations.len());
        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.cache_hits_served, 1);
        assert_eq!(snap.served_degraded, 0);
    }

    #[test]
    fn zero_deadline_times_out() {
        let mut config = ServeConfig::with_workers(1);
        config.deadline = Duration::ZERO;
        let service = AnswerService::start(engines(), config);
        let err = service
            .answer(Request::new(EngineKind::Claude, "instant deadline", 10, 1))
            .expect_err("must time out");
        assert_eq!(err, ServeError::TimedOut);
        let snap = service.shutdown();
        assert_eq!(snap.timed_out, 1, "timeout must be counted exactly once");
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn flood_rejects_with_overloaded() {
        let mut config = ServeConfig::with_workers(1).without_cache();
        config.queue_depth = 2;
        let service = AnswerService::start(engines(), config);
        let mut pending = Vec::new();
        let mut overloaded = 0;
        for i in 0..128 {
            let req = Request::new(EngineKind::Gemini, &format!("flood query {i}"), 10, i);
            match service.submit(req) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded) => overloaded += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(
            overloaded > 0,
            "a 2-deep queue behind 1 worker must shed some of 128 instant submits"
        );
        for p in pending {
            p.wait().expect("admitted requests complete");
        }
        let snap = service.shutdown();
        assert_eq!(snap.overloaded, overloaded);
        assert_eq!(snap.completed + snap.overloaded, 128);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = AnswerService::start(engines(), ServeConfig::with_workers(2));
        let mut pending = Vec::new();
        for i in 0..8 {
            let req = Request::new(EngineKind::Perplexity, &format!("drain {i}"), 10, i);
            pending.push(service.submit(req).expect("queue fits 8"));
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 8, "shutdown must drain, not drop");
        for p in pending {
            p.wait().expect("drained answers are delivered");
        }
    }

    #[test]
    fn backlog_forms_micro_batches_without_changing_answers() {
        // One worker, no cache: while it computes the first answer, the
        // remaining submissions pile up in the queue, so later drains
        // must carry more than one job.
        let mut config = ServeConfig::with_workers(1).without_cache();
        config.queue_depth = 32;
        let stack = engines();
        let service = AnswerService::start(stack.clone(), config);
        let reqs: Vec<Request> = (0..16)
            .map(|i| Request::new(EngineKind::Gpt4o, &format!("batched query {i}"), 10, i))
            .collect();
        let pending: Vec<_> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).expect("queue fits 16"))
            .collect();
        let served: Vec<_> = pending
            .into_iter()
            .map(|p| p.wait().expect("batched requests complete"))
            .collect();
        // Batched serving is a scheduling change only: every answer is
        // identical to a direct run on the same stack.
        for (req, s) in reqs.iter().zip(&served) {
            let direct = stack.answer(req.engine, &req.query, req.top_k, req.seed);
            assert_eq!(s.answer.text, direct.text);
            assert_eq!(s.answer.domains(), direct.domains());
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.batch.batched_jobs, 16, "every job rode a drain");
        assert!(
            snap.batch.batches < snap.batch.batched_jobs,
            "at least one drain must carry multiple jobs ({} drains / {} jobs)",
            snap.batch.batches,
            snap.batch.batched_jobs,
        );
        assert!(snap.batch.max_batch >= 2);
        assert_eq!(snap.kernel.scratch_fallbacks, 0);
    }

    #[test]
    fn infallible_stack_never_trips_resilience() {
        // Production configuration: resilience armed, zero faults — no
        // retries, no degradation, no breaker activity.
        let service = AnswerService::start(engines(), ServeConfig::with_workers(2));
        for i in 0..16u64 {
            let req = Request::new(
                EngineKind::ALL[(i % 5) as usize],
                &format!("steady query {i}"),
                10,
                i,
            );
            let served = service.answer(req).expect("infallible stack");
            assert_eq!(served.degradation, Degradation::None);
        }
        let snap = service.shutdown();
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.engine_failures, 0);
        assert_eq!(snap.breaker_rejections, 0);
        assert_eq!(snap.served_degraded, 0);
        assert_eq!(snap.failed, 0);
    }
}
