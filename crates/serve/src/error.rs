//! Typed service errors — the admission-control surface.

use std::fmt;

/// Why a request was not answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeError {
    /// The bounded request queue was full at admission time. Clients
    /// should back off and retry; the service sheds load instead of
    /// growing an unbounded backlog.
    Overloaded,
    /// The request's deadline elapsed before a worker produced (or the
    /// caller collected) an answer.
    TimedOut,
    /// The service is draining and no longer admits requests.
    ShuttingDown,
    /// The assigned worker disappeared without replying (a worker panic).
    WorkerLost,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ServeError::Overloaded => "request queue full (overloaded)",
            ServeError::TimedOut => "deadline elapsed before completion",
            ServeError::ShuttingDown => "service is shutting down",
            ServeError::WorkerLost => "worker vanished before replying",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::ServeError;

    #[test]
    fn errors_display_distinctly() {
        let all = [
            ServeError::Overloaded,
            ServeError::TimedOut,
            ServeError::ShuttingDown,
            ServeError::WorkerLost,
        ];
        let texts: std::collections::HashSet<String> = all.iter().map(|e| e.to_string()).collect();
        assert_eq!(texts.len(), all.len());
    }
}
