//! Typed service errors — the admission-control and resilience surface.

use std::fmt;

use shift_engines::EngineKind;

/// Why a request was not answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeError {
    /// The bounded request queue was full at admission time. Clients
    /// should back off and retry; the service sheds load instead of
    /// growing an unbounded backlog.
    Overloaded,
    /// The request's deadline elapsed before a worker produced (or the
    /// caller collected) an answer.
    TimedOut,
    /// The service is draining and no longer admits requests.
    ShuttingDown,
    /// The assigned worker disappeared without replying (a worker panic).
    WorkerLost,
    /// The engine failed every attempt the retry budget allowed, and no
    /// degradation path was configured to absorb the failure.
    EngineFailed {
        /// The engine that failed.
        engine: EngineKind,
    },
    /// The engine's circuit breaker was open: the request was rejected
    /// without touching the engine, and no degradation path absorbed it.
    BreakerOpen {
        /// The engine whose breaker rejected the request.
        engine: EngineKind,
    },
    /// The engine failed and degradation was attempted but came up empty
    /// (no stale cache entry, SERP fallback disabled or also down).
    DegradedUnavailable {
        /// The engine the degradation ladder could not cover for.
        engine: EngineKind,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => f.write_str("request queue full (overloaded)"),
            ServeError::TimedOut => f.write_str("deadline elapsed before completion"),
            ServeError::ShuttingDown => f.write_str("service is shutting down"),
            ServeError::WorkerLost => f.write_str("worker vanished before replying"),
            ServeError::EngineFailed { engine } => {
                write!(f, "engine {} failed after retries", engine.name())
            }
            ServeError::BreakerOpen { engine } => {
                write!(f, "circuit breaker open for {}", engine.name())
            }
            ServeError::DegradedUnavailable { engine } => {
                write!(f, "no degraded answer available for {}", engine.name())
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::ServeError;

    use shift_engines::EngineKind;

    #[test]
    fn errors_display_distinctly() {
        let mut all = vec![
            ServeError::Overloaded,
            ServeError::TimedOut,
            ServeError::ShuttingDown,
            ServeError::WorkerLost,
        ];
        // The engine-tagged variants must also be distinct per engine.
        for kind in EngineKind::ALL {
            all.push(ServeError::EngineFailed { engine: kind });
            all.push(ServeError::BreakerOpen { engine: kind });
            all.push(ServeError::DegradedUnavailable { engine: kind });
        }
        let texts: std::collections::HashSet<String> = all.iter().map(|e| e.to_string()).collect();
        assert_eq!(texts.len(), all.len());
    }
}
