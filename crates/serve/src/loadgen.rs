//! Deterministic load generation over the study's query workloads.
//!
//! A [`Workload`] is a fixed pool of [`shift_queries`] queries plus a
//! Zipfian popularity ranking: request *i* draws query of rank *r* with
//! probability ∝ 1/(r+1)^s, which is what makes answer caching matter —
//! real search traffic repeats its head queries constantly.
//!
//! Two driving modes:
//!
//! * **Closed loop** ([`LoadMode::Closed`]): `clients` threads each issue
//!   their next request only after the previous one finishes — classic
//!   benchmark concurrency, throughput limited by service latency.
//! * **Open loop** ([`LoadMode::Open`]): requests are submitted at a
//!   fixed arrival rate regardless of completions, then collected; this
//!   is the mode that exercises backpressure honestly.
//!
//! Everything is seeded: the same `(workload seed, load seed)` pair
//! yields the same request sequence, and each request's decode seed is
//! derived from its query text, so repeats of a query are byte-identical
//! and cache-coherent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::thread as cb_thread;
use rand::{rngs::StdRng, Rng, SeedableRng};
use shift_corpus::{Vertical, World};
use shift_engines::{AnswerEngines, EngineKind, FaultInjector, FaultPlan};
use shift_queries::{comparison_queries, intent_queries, ranking_queries, vertical_queries, Query};

use crate::cache::CacheConfig;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::resilience::{Degradation, ResilienceConfig};
use crate::service::{AnswerService, Request, ServedAnswer};

/// A fixed query pool with a Zipfian repeat distribution over it.
#[derive(Debug, Clone)]
pub struct Workload {
    queries: Vec<Query>,
    /// Cumulative Zipf weights, `cumulative[i] = Σ_{r≤i} 1/(r+1)^s`.
    cumulative: Vec<f64>,
    seed: u64,
}

impl Workload {
    /// Zipf exponent used by [`Workload::mixed`].
    pub const DEFAULT_ZIPF_S: f64 = 1.0;

    /// The standard mixed workload: ranking + comparison + intent +
    /// vertical queries from all four study generators, shuffled by
    /// `seed` so popularity rank is decoupled from generator order.
    pub fn mixed(world: &World, seed: u64) -> Workload {
        let mut queries = Vec::new();
        queries.extend(ranking_queries(world, 60, seed ^ 0x5261));
        queries.extend(comparison_queries(world, 20, 20, seed ^ 0x434f));
        queries.extend(intent_queries(world, 15, seed ^ 0x494e));
        for vertical in [
            Vertical::ConsumerElectronics,
            Vertical::Automotive,
            Vertical::Travel,
            Vertical::Finance,
        ] {
            queries.extend(vertical_queries(world, vertical, 10, seed ^ 0x5645));
        }
        Workload::from_queries(queries, Self::DEFAULT_ZIPF_S, seed)
    }

    /// Build a workload from an explicit query pool.
    ///
    /// # Panics
    /// Panics when `queries` is empty or `zipf_s` is not finite.
    pub fn from_queries(mut queries: Vec<Query>, zipf_s: f64, seed: u64) -> Workload {
        assert!(!queries.is_empty(), "workload needs at least one query");
        assert!(zipf_s.is_finite(), "Zipf exponent must be finite");
        // Shuffle so Zipf rank (popularity) is independent of which
        // generator a query came from.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5748_4c44);
        use rand::seq::SliceRandom;
        queries.shuffle(&mut rng);
        let mut cumulative = Vec::with_capacity(queries.len());
        let mut total = 0.0;
        for rank in 0..queries.len() {
            total += 1.0 / ((rank + 1) as f64).powf(zipf_s);
            cumulative.push(total);
        }
        Workload {
            queries,
            cumulative,
            seed,
        }
    }

    /// Number of distinct queries in the pool.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Draw one query by Zipf rank.
    pub fn draw<'a>(&'a self, rng: &mut StdRng) -> &'a Query {
        let total = *self.cumulative.last().expect("non-empty");
        let needle = rng.gen_unit() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < needle)
            .min(self.queries.len() - 1);
        &self.queries[idx]
    }

    /// The request for draw `i` of engine rotation `engines`.
    ///
    /// The decode seed hashes the query text against the workload seed,
    /// NOT the draw index — so two draws of the same query are identical
    /// requests and the cache may legally serve the second from the
    /// first.
    pub fn request_at(
        &self,
        rng: &mut StdRng,
        i: u64,
        engines: &[EngineKind],
        top_k: usize,
    ) -> Request {
        let query = self.draw(rng);
        let engine = engines[(i % engines.len() as u64) as usize];
        Request::new(
            engine,
            &query.text,
            top_k,
            text_seed(&query.text) ^ self.seed,
        )
    }
}

/// FNV-1a of the query text; the text-derived half of a request seed.
fn text_seed(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How the generator drives the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `clients` synchronous client threads, each waiting for its answer
    /// before issuing the next request.
    Closed {
        /// Concurrent client threads.
        clients: usize,
    },
    /// Fixed arrival rate, submissions never wait on completions.
    Open {
        /// Target arrivals per second.
        rate_per_sec: f64,
    },
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to issue.
    pub requests: u64,
    /// Engines to rotate through (request *i* uses `engines[i % len]`).
    pub engines: Vec<EngineKind>,
    /// Answer depth for every request.
    pub top_k: usize,
    /// Driving mode.
    pub mode: LoadMode,
    /// Seed of the request sequence (independent of the workload seed).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            requests: 1000,
            engines: EngineKind::ALL.to_vec(),
            top_k: 10,
            mode: LoadMode::Closed { clients: 4 },
            seed: 1,
        }
    }
}

/// Tally of a finished load run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Requests answered (at any fidelity level).
    pub succeeded: u64,
    /// Answered requests served from a stale cache entry (subset of
    /// `succeeded`).
    pub served_stale: u64,
    /// Answered requests served below full fidelity — stale or SERP
    /// fallback (subset of `succeeded`; `served_stale` ⊆ this).
    pub served_degraded: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub overloaded: u64,
    /// Requests that hit their deadline.
    pub timed_out: u64,
    /// Requests failed with [`ServeError::EngineFailed`].
    pub engine_failed: u64,
    /// Requests rejected with [`ServeError::BreakerOpen`].
    pub breaker_open: u64,
    /// Requests failed with [`ServeError::DegradedUnavailable`].
    pub unavailable: u64,
    /// Other failures (shutdown races, lost workers).
    pub failed: u64,
}

impl LoadOutcome {
    fn absorb(&mut self, result: &Result<ServedAnswer, ServeError>) {
        match result {
            Ok(served) => {
                self.succeeded += 1;
                match served.degradation {
                    Degradation::None => {}
                    Degradation::Stale => {
                        self.served_stale += 1;
                        self.served_degraded += 1;
                    }
                    Degradation::SerpFallback => self.served_degraded += 1,
                }
            }
            Err(ServeError::Overloaded) => self.overloaded += 1,
            Err(ServeError::TimedOut) => self.timed_out += 1,
            Err(ServeError::EngineFailed { .. }) => self.engine_failed += 1,
            Err(ServeError::BreakerOpen { .. }) => self.breaker_open += 1,
            Err(ServeError::DegradedUnavailable { .. }) => self.unavailable += 1,
            Err(_) => self.failed += 1,
        }
    }

    fn merge(&mut self, other: LoadOutcome) {
        self.succeeded += other.succeeded;
        self.served_stale += other.served_stale;
        self.served_degraded += other.served_degraded;
        self.overloaded += other.overloaded;
        self.timed_out += other.timed_out;
        self.engine_failed += other.engine_failed;
        self.breaker_open += other.breaker_open;
        self.unavailable += other.unavailable;
        self.failed += other.failed;
    }

    /// Total requests accounted for (the degraded counters are subsets
    /// of `succeeded`, not separate terminal states).
    pub fn total(&self) -> u64 {
        self.succeeded
            + self.overloaded
            + self.timed_out
            + self.engine_failed
            + self.breaker_open
            + self.unavailable
            + self.failed
    }

    /// Fraction of requests that got *an* answer, at any fidelity.
    /// Vacuously 1.0 for an empty run.
    pub fn availability(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.succeeded as f64 / total as f64
        }
    }

    /// Fraction of requests answered at full fidelity (requested engine,
    /// fresh answer).
    pub fn full_fidelity(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.succeeded - self.served_degraded) as f64 / total as f64
        }
    }
}

/// Drive `service` with `workload` according to `config`; blocks until
/// every issued request resolves.
pub fn run_load(service: &AnswerService, workload: &Workload, config: &LoadConfig) -> LoadOutcome {
    match config.mode {
        LoadMode::Closed { clients } => run_closed(service, workload, config, clients.max(1)),
        LoadMode::Open { rate_per_sec } => run_open(service, workload, config, rate_per_sec),
    }
}

fn run_closed(
    service: &AnswerService,
    workload: &Workload,
    config: &LoadConfig,
    clients: usize,
) -> LoadOutcome {
    // Pre-materialize the request sequence from one seeded stream, then
    // split it into contiguous per-client chunks: the set of requests is
    // identical for any client count.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let requests: Vec<Request> = (0..config.requests)
        .map(|i| workload.request_at(&mut rng, i, &config.engines, config.top_k))
        .collect();
    let chunk = requests.len().div_ceil(clients).max(1);
    let mut outcome = LoadOutcome::default();
    let partials = cb_thread::scope(|s| {
        let handles: Vec<_> = requests
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move || {
                    let mut partial = LoadOutcome::default();
                    for request in slice {
                        partial.absorb(&service.answer(request.clone()));
                    }
                    partial
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    })
    .expect("load scope");
    for partial in partials {
        outcome.merge(partial);
    }
    outcome
}

fn run_open(
    service: &AnswerService,
    workload: &Workload,
    config: &LoadConfig,
    rate_per_sec: f64,
) -> LoadOutcome {
    let interval = if rate_per_sec > 0.0 {
        Duration::from_secs_f64(1.0 / rate_per_sec)
    } else {
        Duration::ZERO
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = Instant::now();
    let mut outcome = LoadOutcome::default();
    let mut pending = Vec::new();
    for i in 0..config.requests {
        let due = start + interval.mul_f64(i as f64);
        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let request = workload.request_at(&mut rng, i, &config.engines, config.top_k);
        match service.submit(request) {
            Ok(p) => pending.push(p),
            Err(e) => outcome.absorb(&Err(e)),
        }
    }
    for p in pending {
        outcome.absorb(&p.wait());
    }
    outcome
}

/// Parameters of one chaos experiment: a fault plan, a workload, and the
/// resilience policy whose value the experiment measures.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Requests per run (the resilient and baseline runs each issue
    /// this many, over the identical request sequence).
    pub requests: u64,
    /// Engines to rotate through.
    pub engines: Vec<EngineKind>,
    /// Answer depth for every request.
    pub top_k: usize,
    /// Seed of the query pool and its Zipf shuffle.
    pub workload_seed: u64,
    /// Seed of the request draw sequence.
    pub load_seed: u64,
    /// The faults to inject.
    pub plan: FaultPlan,
    /// Resilience policy of the "on" run (the "off" run always uses
    /// [`ResilienceConfig::disabled`]).
    pub resilience: ResilienceConfig,
    /// Per-request deadline. Generous by default: chaos measures fault
    /// handling, not deadline pressure.
    pub deadline: Duration,
    /// Cache geometry. The default is [`CacheConfig::always_stale`]:
    /// the fresh fast path never serves (every request exercises the
    /// injector — Zipfian repeats can't mask faults behind cache hits,
    /// and no wall-clock TTL can perturb the tally), while the stale
    /// rung of the degradation ladder stays fully stocked.
    pub cache: CacheConfig,
}

impl ChaosConfig {
    /// The committed chaos experiment shape for `plan`.
    pub fn standard(plan: FaultPlan) -> ChaosConfig {
        ChaosConfig {
            requests: 1000,
            engines: EngineKind::ALL.to_vec(),
            top_k: 10,
            workload_seed: 77,
            load_seed: 4242,
            plan,
            resilience: ResilienceConfig::default(),
            deadline: Duration::from_secs(30),
            cache: CacheConfig::always_stale(),
        }
    }
}

/// Availability under chaos, resilience on vs. off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Requests issued per run.
    pub requests: u64,
    /// Tally of the resilience-enabled run.
    pub resilient: LoadOutcome,
    /// Tally of the resilience-disabled run.
    pub baseline: LoadOutcome,
}

impl ChaosReport {
    /// Good-answer rate with resilience on.
    pub fn availability_resilient(&self) -> f64 {
        self.resilient.availability()
    }

    /// Good-answer rate with resilience off.
    pub fn availability_baseline(&self) -> f64 {
        self.baseline.availability()
    }

    /// Resilient availability over baseline availability (∞ when the
    /// baseline answered nothing).
    pub fn ratio(&self) -> f64 {
        let base = self.availability_baseline();
        if base == 0.0 {
            f64::INFINITY
        } else {
            self.availability_resilient() / base
        }
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== chaos availability ==\n");
        out.push_str(&format!("requests per run: {}\n", self.requests));
        out.push_str(&format!(
            "{:<16} {:>13} {:>14} {:>8} {:>8} {:>8}\n",
            "run", "availability", "full fidelity", "stale", "serp", "failed"
        ));
        for (name, o) in [
            ("resilience on", &self.resilient),
            ("resilience off", &self.baseline),
        ] {
            out.push_str(&format!(
                "{:<16} {:>13.4} {:>14.4} {:>8} {:>8} {:>8}\n",
                name,
                o.availability(),
                o.full_fidelity(),
                o.served_stale,
                o.served_degraded - o.served_stale,
                o.total() - o.succeeded,
            ));
        }
        out.push_str(&format!(
            "availability ratio (on/off): {:.2}x\n",
            self.ratio()
        ));
        out
    }
}

/// Run the chaos experiment: the same fault plan and request sequence,
/// once with resilience enabled and once disabled, reporting availability
/// for both.
///
/// Each run is driven serially (one worker, one closed-loop client) so
/// the tally is bit-reproducible: with every fault decision seeded, the
/// same `ChaosConfig` yields the same [`ChaosReport`] on every machine,
/// every time.
pub fn run_chaos(stack: &Arc<AnswerEngines>, config: &ChaosConfig) -> ChaosReport {
    let workload = Workload::mixed(stack.world(), config.workload_seed);
    let run = |resilience: ResilienceConfig| -> LoadOutcome {
        let injector = FaultInjector::new(Arc::clone(stack), config.plan.clone());
        let serve = ServeConfig {
            workers: 1,
            queue_depth: 4,
            deadline: config.deadline,
            batch_max: ServeConfig::default().batch_max,
            cache: config.cache.clone(),
            resilience,
        };
        let service = AnswerService::start_chaos(injector, serve);
        let load = LoadConfig {
            requests: config.requests,
            engines: config.engines.clone(),
            top_k: config.top_k,
            mode: LoadMode::Closed { clients: 1 },
            seed: config.load_seed,
        };
        let outcome = run_load(&service, &workload, &load);
        service.shutdown();
        outcome
    };
    ChaosReport {
        requests: config.requests,
        resilient: run(config.resilience.clone()),
        baseline: run(ResilienceConfig::disabled()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::small(), 41)
    }

    #[test]
    fn workload_is_deterministic() {
        let w = world();
        let wl_a = Workload::mixed(&w, 9);
        let wl_b = Workload::mixed(&w, 9);
        assert_eq!(wl_a.len(), wl_b.len());
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        for i in 0..64 {
            let ra = wl_a.request_at(&mut rng_a, i, &EngineKind::ALL, 10);
            let rb = wl_b.request_at(&mut rng_b, i, &EngineKind::ALL, 10);
            assert_eq!(ra.query, rb.query);
            assert_eq!(ra.engine, rb.engine);
            assert_eq!(ra.seed, rb.seed);
        }
    }

    #[test]
    fn zipf_skews_toward_head() {
        let w = world();
        let workload = Workload::mixed(&w, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; workload.len()];
        let draws = 4000;
        for _ in 0..draws {
            let q = workload.draw(&mut rng);
            let idx = workload
                .queries
                .iter()
                .position(|c| std::ptr::eq(c, q))
                .unwrap();
            counts[idx] += 1;
        }
        let head: u32 = counts.iter().take(workload.len() / 10).sum();
        assert!(
            f64::from(head) / f64::from(draws) > 0.3,
            "top decile must absorb well over its uniform share, got {head}/{draws}"
        );
    }

    #[test]
    fn outcome_availability_math() {
        let o = LoadOutcome {
            succeeded: 80,
            served_stale: 10,
            served_degraded: 25,
            overloaded: 0,
            timed_out: 0,
            engine_failed: 15,
            breaker_open: 5,
            unavailable: 0,
            failed: 0,
        };
        assert_eq!(
            o.total(),
            100,
            "degraded counters are subsets, not terminals"
        );
        assert!((o.availability() - 0.80).abs() < 1e-12);
        assert!((o.full_fidelity() - 0.55).abs() < 1e-12);
        assert_eq!(LoadOutcome::default().availability(), 1.0, "vacuous run");
    }

    #[test]
    fn repeat_draws_share_a_seed() {
        let w = world();
        let workload = Workload::mixed(&w, 11);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        let mut repeats = 0;
        for i in 0..256 {
            let r = workload.request_at(&mut rng, i, &[EngineKind::Gpt4o], 10);
            if let Some(&seed) = seen.get(&r.query) {
                assert_eq!(seed, r.seed, "same query text must reuse its seed");
                repeats += 1;
            } else {
                seen.insert(r.query.clone(), r.seed);
            }
        }
        assert!(repeats > 0, "a Zipfian draw of 256 must repeat something");
    }
}
