//! Service-side metrics: per-engine latencies, outcome counters, and a
//! latency histogram, all snapshotted into a [`MetricsSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shift_engines::{EngineKind, KernelStats, SerpCacheStats, SingleFlightStats};
use shift_metrics::{mean, percentile, Histogram};

use crate::cache::CacheStats;
use crate::report::{BatchServeStats, EngineLatency, LiveServeStats, MetricsSnapshot};
use crate::resilience::Degradation;

/// Upper bound of the latency histogram, in milliseconds. Latencies above
/// it land in the overflow bucket.
pub const HISTOGRAM_MAX_MS: f64 = 20.0;
/// Bin count of the latency histogram.
pub const HISTOGRAM_BINS: usize = 50;

/// Shared metrics sink for one [`crate::AnswerService`].
///
/// Latency samples are appended under a short per-engine lock; counters
/// are relaxed atomics. `snapshot` does the expensive percentile work.
pub struct ServiceMetrics {
    started: Instant,
    latencies_ms: [Mutex<Vec<f64>>; 5],
    completed: AtomicU64,
    cache_hits_served: AtomicU64,
    overloaded: AtomicU64,
    timed_out: AtomicU64,
    retries: AtomicU64,
    served_stale: AtomicU64,
    served_degraded: AtomicU64,
    engine_failures: AtomicU64,
    breaker_rejections: AtomicU64,
    failed: AtomicU64,
    refreshes: AtomicU64,
    // Retrieval-kernel counters, folded in per job from each worker's
    // scratch (shard-aware: a scratch aggregates its per-shard
    // children before reporting).
    docs_scored: AtomicU64,
    candidates_pruned: AtomicU64,
    scratch_fallbacks: AtomicU64,
    // Micro-batch shape: how many queue drains happened, how many jobs
    // they carried, and the largest drain seen (fetch_max gauge).
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    max_batch: AtomicU64,
    // Live-index counters (monotone) and shape gauges (last set wins),
    // fed by the churn benchmark's ingest loop.
    live_events: AtomicU64,
    live_flushes: AtomicU64,
    live_compactions: AtomicU64,
    live_segments: AtomicU64,
    live_memtable_docs: AtomicU64,
    live_docs: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh metrics; the throughput clock starts now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            latencies_ms: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            completed: AtomicU64::new(0),
            cache_hits_served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            served_stale: AtomicU64::new(0),
            served_degraded: AtomicU64::new(0),
            engine_failures: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            docs_scored: AtomicU64::new(0),
            candidates_pruned: AtomicU64::new(0),
            scratch_fallbacks: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            live_events: AtomicU64::new(0),
            live_flushes: AtomicU64::new(0),
            live_compactions: AtomicU64::new(0),
            live_segments: AtomicU64::new(0),
            live_memtable_docs: AtomicU64::new(0),
            live_docs: AtomicU64::new(0),
        }
    }

    /// Record a successfully served answer and its end-to-end latency.
    ///
    /// Called exactly once per served request regardless of how many
    /// attempts it took (attempts are counted via [`Self::record_retry`]);
    /// the degradation level says which rung of the ladder answered.
    pub fn record_served(
        &self,
        engine: EngineKind,
        latency: Duration,
        from_cache: bool,
        degradation: Degradation,
    ) {
        let ms = latency.as_secs_f64() * 1e3;
        self.latencies_ms[engine.index()].lock().push(ms);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if from_cache {
            self.cache_hits_served.fetch_add(1, Ordering::Relaxed);
        }
        match degradation {
            Degradation::None => {}
            Degradation::Stale => {
                self.served_stale.fetch_add(1, Ordering::Relaxed);
                self.served_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Degradation::SerpFallback => {
                self.served_degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record an admission-control rejection.
    pub fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a deadline miss.
    pub fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retry attempt (a request retried twice counts two).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed engine attempt (faults, not deadline misses).
    pub fn record_engine_failure(&self) {
        self.engine_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request turned away by an open circuit breaker.
    pub fn record_breaker_rejection(&self) {
        self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that ultimately got no answer at all.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed stale-while-revalidate background refresh.
    pub fn record_refresh(&self) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one job's retrieval-kernel counters into the service totals.
    ///
    /// Workers call this with [`shift_engines::QueryScratch::take_stats`]
    /// after each job, so sharded runs report the sum over every shard
    /// the job touched.
    pub fn record_kernel(&self, stats: KernelStats) {
        self.docs_scored
            .fetch_add(stats.docs_scored, Ordering::Relaxed);
        self.candidates_pruned
            .fetch_add(stats.candidates_pruned, Ordering::Relaxed);
        self.scratch_fallbacks
            .fetch_add(stats.scratch_fallbacks, Ordering::Relaxed);
    }

    /// Record one micro-batch drained from the admission queue.
    pub fn record_batch(&self, jobs: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs, Ordering::Relaxed);
        self.max_batch.fetch_max(jobs, Ordering::Relaxed);
    }

    /// Record live-index mutations applied (upserts + deletes).
    pub fn record_live_events(&self, n: u64) {
        self.live_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Record live-index memtable flushes.
    pub fn record_live_flushes(&self, n: u64) {
        self.live_flushes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record live-index compaction merges.
    pub fn record_live_compactions(&self, n: u64) {
        self.live_compactions.fetch_add(n, Ordering::Relaxed);
    }

    /// Set the live-index shape gauges: current segment count, buffered
    /// memtable versions, and visible documents.
    pub fn set_live_shape(&self, segments: u64, memtable_docs: u64, live_docs: u64) {
        self.live_segments.store(segments, Ordering::Relaxed);
        self.live_memtable_docs
            .store(memtable_docs, Ordering::Relaxed);
        self.live_docs.store(live_docs, Ordering::Relaxed);
    }

    /// Retry attempts so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Seconds since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Materialize percentiles, throughput, and the histogram.
    pub fn snapshot(
        &self,
        cache: CacheStats,
        serp_cache: SerpCacheStats,
        single_flight: SingleFlightStats,
    ) -> MetricsSnapshot {
        let mut histogram = Histogram::new(0.0, HISTOGRAM_MAX_MS, HISTOGRAM_BINS);
        let mut engines = Vec::with_capacity(EngineKind::ALL.len());
        let mut all: Vec<f64> = Vec::new();
        for kind in EngineKind::ALL {
            let samples = self.latencies_ms[kind.index()].lock().clone();
            for &ms in &samples {
                histogram.record(ms);
            }
            all.extend_from_slice(&samples);
            engines.push(EngineLatency::from_samples(kind, &samples));
        }
        let elapsed = self.elapsed_secs();
        let completed = self.completed();
        MetricsSnapshot {
            elapsed_secs: elapsed,
            completed,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cache_hits_served: self.cache_hits_served.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            served_stale: self.served_stale.load(Ordering::Relaxed),
            served_degraded: self.served_degraded.load(Ordering::Relaxed),
            engine_failures: self.engine_failures.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            overall: EngineLatencySummary::of(&all),
            engines,
            histogram,
            cache,
            serp_cache,
            kernel: KernelStats {
                docs_scored: self.docs_scored.load(Ordering::Relaxed),
                candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
                scratch_fallbacks: self.scratch_fallbacks.load(Ordering::Relaxed),
            },
            batch: BatchServeStats {
                batches: self.batches.load(Ordering::Relaxed),
                batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
                max_batch: self.max_batch.load(Ordering::Relaxed),
            },
            single_flight,
            live: LiveServeStats {
                events: self.live_events.load(Ordering::Relaxed),
                flushes: self.live_flushes.load(Ordering::Relaxed),
                compactions: self.live_compactions.load(Ordering::Relaxed),
                segments: self.live_segments.load(Ordering::Relaxed),
                memtable_docs: self.live_memtable_docs.load(Ordering::Relaxed),
                live_docs: self.live_docs.load(Ordering::Relaxed),
            },
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

/// Percentile summary of a latency sample set, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineLatencySummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

impl EngineLatencySummary {
    /// Summarize a sample set (all zeros when empty).
    pub fn of(samples: &[f64]) -> EngineLatencySummary {
        if samples.is_empty() {
            return EngineLatencySummary::default();
        }
        EngineLatencySummary {
            count: samples.len(),
            mean_ms: mean(samples),
            p50_ms: percentile(samples, 50.0),
            p95_ms: percentile(samples, 95.0),
            p99_ms: percentile(samples, 99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_order() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = EngineLatencySummary::of(&samples);
        assert_eq!(s.count, 100);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!(s.p50_ms > 0.0);
    }

    #[test]
    fn snapshot_counts_per_engine() {
        let m = ServiceMetrics::new();
        m.record_served(
            EngineKind::Google,
            Duration::from_millis(2),
            false,
            Degradation::None,
        );
        m.record_served(
            EngineKind::Google,
            Duration::from_millis(4),
            true,
            Degradation::None,
        );
        m.record_served(
            EngineKind::Claude,
            Duration::from_millis(8),
            false,
            Degradation::None,
        );
        m.record_overloaded();
        m.record_timed_out();
        m.record_kernel(KernelStats {
            docs_scored: 40,
            candidates_pruned: 7,
            scratch_fallbacks: 0,
        });
        m.record_kernel(KernelStats {
            docs_scored: 2,
            candidates_pruned: 3,
            scratch_fallbacks: 1,
        });
        m.record_batch(1);
        m.record_batch(5);
        m.record_batch(3);
        let snap = m.snapshot(
            CacheStats::default(),
            SerpCacheStats::default(),
            SingleFlightStats::default(),
        );
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.cache_hits_served, 1);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.kernel.docs_scored, 42);
        assert_eq!(snap.kernel.candidates_pruned, 10);
        assert_eq!(snap.kernel.scratch_fallbacks, 1);
        assert_eq!(snap.batch.batches, 3);
        assert_eq!(snap.batch.batched_jobs, 9);
        assert_eq!(snap.batch.max_batch, 5);
        assert!((snap.batch.mean_batch() - 3.0).abs() < 1e-12);
        let google = &snap.engines[EngineKind::Google.index()];
        assert_eq!(google.summary.count, 2);
        let gemini = &snap.engines[EngineKind::Gemini.index()];
        assert_eq!(gemini.summary.count, 0);
        assert_eq!(snap.histogram.total(), 3);
        assert!(snap.throughput_rps > 0.0);
    }

    #[test]
    fn resilience_counters_flow_into_the_snapshot() {
        let m = ServiceMetrics::new();
        m.record_served(
            EngineKind::Gpt4o,
            Duration::from_millis(1),
            true,
            Degradation::Stale,
        );
        m.record_served(
            EngineKind::Gpt4o,
            Duration::from_millis(1),
            false,
            Degradation::SerpFallback,
        );
        m.record_retry();
        m.record_retry();
        m.record_engine_failure();
        m.record_breaker_rejection();
        m.record_failed();
        m.record_refresh();
        let snap = m.snapshot(
            CacheStats::default(),
            SerpCacheStats::default(),
            SingleFlightStats::default(),
        );
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.served_stale, 1, "only the stale serve counts stale");
        assert_eq!(
            snap.served_degraded, 2,
            "stale and SERP both count degraded"
        );
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.engine_failures, 1);
        assert_eq!(snap.breaker_rejections, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.refreshes, 1);
    }
}
