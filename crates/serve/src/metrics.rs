//! Service-side metrics: per-engine latencies, outcome counters, and a
//! latency histogram, all snapshotted into a [`MetricsSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shift_engines::EngineKind;
use shift_metrics::{mean, percentile, Histogram};

use crate::cache::CacheStats;
use crate::report::{EngineLatency, MetricsSnapshot};

/// Upper bound of the latency histogram, in milliseconds. Latencies above
/// it land in the overflow bucket.
pub const HISTOGRAM_MAX_MS: f64 = 20.0;
/// Bin count of the latency histogram.
pub const HISTOGRAM_BINS: usize = 50;

/// Shared metrics sink for one [`crate::AnswerService`].
///
/// Latency samples are appended under a short per-engine lock; counters
/// are relaxed atomics. `snapshot` does the expensive percentile work.
pub struct ServiceMetrics {
    started: Instant,
    latencies_ms: [Mutex<Vec<f64>>; 5],
    completed: AtomicU64,
    cache_hits_served: AtomicU64,
    overloaded: AtomicU64,
    timed_out: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh metrics; the throughput clock starts now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            latencies_ms: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            completed: AtomicU64::new(0),
            cache_hits_served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
        }
    }

    /// Record a successfully served answer and its end-to-end latency.
    pub fn record_served(&self, engine: EngineKind, latency: Duration, from_cache: bool) {
        let ms = latency.as_secs_f64() * 1e3;
        self.latencies_ms[engine.index()].lock().push(ms);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if from_cache {
            self.cache_hits_served.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record an admission-control rejection.
    pub fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a deadline miss.
    pub fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Seconds since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Materialize percentiles, throughput, and the histogram.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let mut histogram = Histogram::new(0.0, HISTOGRAM_MAX_MS, HISTOGRAM_BINS);
        let mut engines = Vec::with_capacity(EngineKind::ALL.len());
        let mut all: Vec<f64> = Vec::new();
        for kind in EngineKind::ALL {
            let samples = self.latencies_ms[kind.index()].lock().clone();
            for &ms in &samples {
                histogram.record(ms);
            }
            all.extend_from_slice(&samples);
            engines.push(EngineLatency::from_samples(kind, &samples));
        }
        let elapsed = self.elapsed_secs();
        let completed = self.completed();
        MetricsSnapshot {
            elapsed_secs: elapsed,
            completed,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cache_hits_served: self.cache_hits_served.load(Ordering::Relaxed),
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            overall: EngineLatencySummary::of(&all),
            engines,
            histogram,
            cache,
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

/// Percentile summary of a latency sample set, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineLatencySummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

impl EngineLatencySummary {
    /// Summarize a sample set (all zeros when empty).
    pub fn of(samples: &[f64]) -> EngineLatencySummary {
        if samples.is_empty() {
            return EngineLatencySummary::default();
        }
        EngineLatencySummary {
            count: samples.len(),
            mean_ms: mean(samples),
            p50_ms: percentile(samples, 50.0),
            p95_ms: percentile(samples, 95.0),
            p99_ms: percentile(samples, 99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_order() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = EngineLatencySummary::of(&samples);
        assert_eq!(s.count, 100);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!(s.p50_ms > 0.0);
    }

    #[test]
    fn snapshot_counts_per_engine() {
        let m = ServiceMetrics::new();
        m.record_served(EngineKind::Google, Duration::from_millis(2), false);
        m.record_served(EngineKind::Google, Duration::from_millis(4), true);
        m.record_served(EngineKind::Claude, Duration::from_millis(8), false);
        m.record_overloaded();
        m.record_timed_out();
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.cache_hits_served, 1);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.timed_out, 1);
        let google = &snap.engines[EngineKind::Google.index()];
        assert_eq!(google.summary.count, 2);
        let gemini = &snap.engines[EngineKind::Gemini.index()];
        assert_eq!(gemini.summary.count, 0);
        assert_eq!(snap.histogram.total(), 3);
        assert!(snap.throughput_rps > 0.0);
    }
}
