//! # shift-serve
//!
//! The online serving layer over the [`shift_engines`] answer stack: the
//! batch study asks "how do the engines differ?", this crate asks "how
//! fast can one box answer live traffic from all five of them?".
//!
//! * [`service`] — [`AnswerService`]: a fixed-size worker pool fed by a
//!   bounded crossbeam channel with admission control (typed
//!   [`ServeError::Overloaded`] / [`ServeError::TimedOut`] rejections),
//!   per-request deadlines, and graceful drain-then-join shutdown.
//! * [`cache`] — [`AnswerCache`]: a sharded, TTL-aware LRU keyed by
//!   token-normalized query text ([`shift_textkit::tokenize`]) plus
//!   engine, depth, and seed, with per-shard `parking_lot` locks and
//!   hit / miss / eviction counters.
//! * [`metrics`] — [`ServiceMetrics`]: per-engine latency recording with
//!   p50/p95/p99 via [`shift_metrics::percentile`], throughput, and a
//!   renderable [`report::MetricsSnapshot`].
//! * [`loadgen`] — deterministic closed- and open-loop load generation
//!   over [`shift_queries`] workloads with a Zipfian repeat distribution,
//!   so cache hit rates look like real traffic; plus [`run_chaos`], which
//!   replays that workload under a seeded [`shift_engines::FaultPlan`]
//!   and reports availability with resilience on vs. off.
//! * [`resilience`] — budgeted retries with deterministic jittered
//!   backoff, per-engine lock-free circuit breakers, and the
//!   [`Degradation`] ladder (stale-while-revalidate cache serving, then
//!   the organic Google SERP as a citation-only answer).
//!
//! ```no_run
//! use std::sync::Arc;
//! use shift_corpus::{World, WorldConfig};
//! use shift_engines::{AnswerEngines, EngineKind};
//! use shift_serve::{AnswerService, Request, ServeConfig};
//!
//! let world = Arc::new(World::generate(&WorldConfig::small(), 7));
//! let engines = Arc::new(AnswerEngines::build(world));
//! let service = AnswerService::start(engines, ServeConfig::default());
//! let served = service
//!     .answer(Request::new(EngineKind::Gpt4o, "best laptops for students", 10, 1))
//!     .unwrap();
//! println!("{} citations", served.answer.citations.len());
//! let report = service.shutdown();
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod error;
pub mod loadgen;
pub mod metrics;
pub mod report;
pub mod resilience;
pub mod service;

pub use cache::{AnswerCache, CacheConfig, CacheKey, CacheStats};
pub use config::ServeConfig;
pub use error::ServeError;
pub use loadgen::{
    run_chaos, run_load, ChaosConfig, ChaosReport, LoadConfig, LoadMode, LoadOutcome, Workload,
};
pub use metrics::ServiceMetrics;
pub use report::{BatchServeStats, LiveServeStats, MetricsSnapshot};
pub use resilience::{
    Admission, BreakerSet, BreakerState, CircuitBreaker, Degradation, ResilienceConfig,
};
pub use service::{AnswerService, PendingAnswer, Request, ServedAnswer};

// Re-exported for chaos-harness callers, so building a fault plan does
// not require a direct `shift_engines` dependency.
pub use shift_engines::{EngineError, FallibleEngines, FaultInjector, FaultPlan, OutageWindow};
