//! Rendering of service metrics: a fixed-width text report and a JSON
//! document for `BENCH_serve.json`.

use std::collections::BTreeMap;

use shift_engines::{EngineKind, KernelStats, SerpCacheStats, SingleFlightStats};
use shift_freshness::json::{to_string as json_to_string, Value};
use shift_metrics::Histogram;

use crate::cache::CacheStats;
use crate::metrics::EngineLatencySummary;

/// Latency summary for one engine.
#[derive(Debug, Clone)]
pub struct EngineLatency {
    /// The engine.
    pub kind: EngineKind,
    /// Percentile summary of its served latencies.
    pub summary: EngineLatencySummary,
}

impl EngineLatency {
    /// Summarize an engine's sample set (milliseconds).
    pub fn from_samples(kind: EngineKind, samples_ms: &[f64]) -> EngineLatency {
        EngineLatency {
            kind,
            summary: EngineLatencySummary::of(samples_ms),
        }
    }
}

/// A point-in-time view of a service's metrics, renderable as text or JSON.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Wall-clock seconds the service has been running.
    pub elapsed_secs: f64,
    /// Requests answered (cache hits included).
    pub completed: u64,
    /// Requests rejected at admission ([`crate::ServeError::Overloaded`]).
    pub overloaded: u64,
    /// Requests that missed their deadline.
    pub timed_out: u64,
    /// Completed requests served straight from the cache.
    pub cache_hits_served: u64,
    /// Retry attempts across all requests (a request retried twice
    /// contributes two).
    pub retries: u64,
    /// Completed requests served from a stale cache entry.
    pub served_stale: u64,
    /// Completed requests served below full fidelity (stale or SERP
    /// fallback); `served_stale` is a subset.
    pub served_degraded: u64,
    /// Failed engine attempts (injected or real faults).
    pub engine_failures: u64,
    /// Requests turned away by an open circuit breaker.
    pub breaker_rejections: u64,
    /// Requests that got no answer at all (engine failed and the
    /// degradation ladder came up empty).
    pub failed: u64,
    /// Completed stale-while-revalidate background refreshes.
    pub refreshes: u64,
    /// Completed requests per second since the service started.
    pub throughput_rps: f64,
    /// Latency summary across all engines.
    pub overall: EngineLatencySummary,
    /// Per-engine latency summaries, in [`EngineKind::ALL`] order.
    pub engines: Vec<EngineLatency>,
    /// Latency histogram (milliseconds) across all served requests.
    pub histogram: Histogram,
    /// Answer-cache counters.
    pub cache: CacheStats,
    /// SERP-cache counters from the engine stack (retrieval-level
    /// cache, below the answer cache).
    pub serp_cache: SerpCacheStats,
    /// Retrieval-kernel work totals, summed across every shard of
    /// every query the service ran.
    pub kernel: KernelStats,
    /// Micro-batch shape of the worker pool's queue drains.
    pub batch: BatchServeStats,
    /// Single-flight dedup counters from the engine stack (collapsed
    /// concurrent SERP-cache misses).
    pub single_flight: SingleFlightStats,
    /// Live-index counters and shape gauges (all zero unless a churn
    /// workload fed the service; see `examples/run_live.rs`).
    pub live: LiveServeStats,
}

/// Micro-batch counters: each "batch" is one drain of the admission
/// queue by one worker (a drain of a single job still counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchServeStats {
    /// Queue drains performed.
    pub batches: u64,
    /// Jobs carried by those drains.
    pub batched_jobs: u64,
    /// Largest single drain.
    pub max_batch: u64,
}

impl BatchServeStats {
    /// Mean jobs per drain (0.0 when no drains happened).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }
}

/// Live-index counters carried through [`crate::ServiceMetrics`]:
/// monotone event/flush/compaction totals plus the latest shape gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveServeStats {
    /// Mutations applied (upserts + deletes).
    pub events: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compaction merges.
    pub compactions: u64,
    /// Current segment count.
    pub segments: u64,
    /// Currently buffered memtable versions.
    pub memtable_docs: u64,
    /// Currently visible documents.
    pub live_docs: u64,
}

impl MetricsSnapshot {
    /// Fixed-width text report, one engine per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== shift-serve metrics ==\n");
        out.push_str(&format!(
            "completed {}  overloaded {}  timed-out {}  elapsed {:.2}s  throughput {:.1} req/s\n",
            self.completed, self.overloaded, self.timed_out, self.elapsed_secs, self.throughput_rps,
        ));
        out.push_str(&format!(
            "cache: {} hits / {} misses (hit rate {:.1}%), {} evictions, {} expirations\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions,
            self.cache.expirations,
        ));
        out.push_str(&format!(
            "serp cache: {} hits / {} misses (hit rate {:.1}%), {} inserts, {} evictions\n",
            self.serp_cache.hits,
            self.serp_cache.misses,
            self.serp_cache.hit_rate() * 100.0,
            self.serp_cache.inserts,
            self.serp_cache.evictions,
        ));
        out.push_str(&format!(
            "retrieval: {} docs scored, {} candidates pruned, {} scratch fallbacks\n",
            self.kernel.docs_scored, self.kernel.candidates_pruned, self.kernel.scratch_fallbacks,
        ));
        out.push_str(&format!(
            "batching: {} drains carrying {} jobs (mean {:.2}, max {})\n",
            self.batch.batches,
            self.batch.batched_jobs,
            self.batch.mean_batch(),
            self.batch.max_batch,
        ));
        out.push_str(&format!(
            "single-flight: {} leaders, {} waiters (collapse rate {:.1}%)\n",
            self.single_flight.leaders,
            self.single_flight.waiters,
            self.single_flight.collapse_rate() * 100.0,
        ));
        if self.live.events > 0 {
            out.push_str(&format!(
                "live index: {} events, {} flushes, {} compactions; \
                 {} segments, {} memtable docs, {} live docs\n",
                self.live.events,
                self.live.flushes,
                self.live.compactions,
                self.live.segments,
                self.live.memtable_docs,
                self.live.live_docs,
            ));
        }
        out.push_str(&format!(
            "resilience: {} retries, {} engine failures, {} breaker rejections, \
             {} stale / {} degraded serves, {} refreshes, {} failed\n",
            self.retries,
            self.engine_failures,
            self.breaker_rejections,
            self.served_stale,
            self.served_degraded,
            self.refreshes,
            self.failed,
        ));
        out.push_str(&format!(
            "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
            "engine", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"
        ));
        for row in &self.engines {
            let s = row.summary;
            out.push_str(&format!(
                "{:<14} {:>7} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                row.kind.name(),
                s.count,
                s.mean_ms,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
            ));
        }
        let o = self.overall;
        out.push_str(&format!(
            "{:<14} {:>7} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            "(all)", o.count, o.mean_ms, o.p50_ms, o.p95_ms, o.p99_ms,
        ));
        out.push_str(&format!(
            "latency histogram [0, {:.0} ms): {}  (+{} overflow)\n",
            self.histogram.bins().last().map(|b| b.1).unwrap_or(0.0),
            self.histogram.ascii_sparkline(),
            self.histogram.overflow(),
        ));
        out
    }

    /// JSON document (the schema of `BENCH_serve.json`).
    pub fn to_json(&self) -> Value {
        fn num(v: f64) -> Value {
            Value::Number(v)
        }
        fn summary_json(s: &EngineLatencySummary) -> Value {
            let mut m = BTreeMap::new();
            m.insert("count".to_string(), num(s.count as f64));
            m.insert("mean_ms".to_string(), num(s.mean_ms));
            m.insert("p50_ms".to_string(), num(s.p50_ms));
            m.insert("p95_ms".to_string(), num(s.p95_ms));
            m.insert("p99_ms".to_string(), num(s.p99_ms));
            Value::Object(m)
        }
        let mut engines = BTreeMap::new();
        for row in &self.engines {
            engines.insert(row.kind.slug().to_string(), summary_json(&row.summary));
        }
        let mut cache = BTreeMap::new();
        cache.insert("hits".to_string(), num(self.cache.hits as f64));
        cache.insert("misses".to_string(), num(self.cache.misses as f64));
        cache.insert("hit_rate".to_string(), num(self.cache.hit_rate()));
        cache.insert("evictions".to_string(), num(self.cache.evictions as f64));
        cache.insert(
            "expirations".to_string(),
            num(self.cache.expirations as f64),
        );
        cache.insert("inserts".to_string(), num(self.cache.inserts as f64));
        cache.insert("stale_hits".to_string(), num(self.cache.stale_hits as f64));
        let mut serp_cache = BTreeMap::new();
        serp_cache.insert("hits".to_string(), num(self.serp_cache.hits as f64));
        serp_cache.insert("misses".to_string(), num(self.serp_cache.misses as f64));
        serp_cache.insert("hit_rate".to_string(), num(self.serp_cache.hit_rate()));
        serp_cache.insert("inserts".to_string(), num(self.serp_cache.inserts as f64));
        serp_cache.insert(
            "evictions".to_string(),
            num(self.serp_cache.evictions as f64),
        );
        let mut kernel = BTreeMap::new();
        kernel.insert(
            "docs_scored".to_string(),
            num(self.kernel.docs_scored as f64),
        );
        kernel.insert(
            "candidates_pruned".to_string(),
            num(self.kernel.candidates_pruned as f64),
        );
        kernel.insert(
            "scratch_fallbacks".to_string(),
            num(self.kernel.scratch_fallbacks as f64),
        );
        let mut batch = BTreeMap::new();
        batch.insert("batches".to_string(), num(self.batch.batches as f64));
        batch.insert(
            "batched_jobs".to_string(),
            num(self.batch.batched_jobs as f64),
        );
        batch.insert("max_batch".to_string(), num(self.batch.max_batch as f64));
        batch.insert("mean_batch".to_string(), num(self.batch.mean_batch()));
        let mut single_flight = BTreeMap::new();
        single_flight.insert(
            "leaders".to_string(),
            num(self.single_flight.leaders as f64),
        );
        single_flight.insert(
            "waiters".to_string(),
            num(self.single_flight.waiters as f64),
        );
        single_flight.insert(
            "collapse_rate".to_string(),
            num(self.single_flight.collapse_rate()),
        );
        let mut resilience = BTreeMap::new();
        resilience.insert("retries".to_string(), num(self.retries as f64));
        resilience.insert("served_stale".to_string(), num(self.served_stale as f64));
        resilience.insert(
            "served_degraded".to_string(),
            num(self.served_degraded as f64),
        );
        resilience.insert(
            "engine_failures".to_string(),
            num(self.engine_failures as f64),
        );
        resilience.insert(
            "breaker_rejections".to_string(),
            num(self.breaker_rejections as f64),
        );
        resilience.insert("failed".to_string(), num(self.failed as f64));
        resilience.insert("refreshes".to_string(), num(self.refreshes as f64));
        let mut root = BTreeMap::new();
        root.insert("elapsed_secs".to_string(), num(self.elapsed_secs));
        root.insert("completed".to_string(), num(self.completed as f64));
        root.insert("overloaded".to_string(), num(self.overloaded as f64));
        root.insert("timed_out".to_string(), num(self.timed_out as f64));
        root.insert(
            "cache_hits_served".to_string(),
            num(self.cache_hits_served as f64),
        );
        root.insert("throughput_rps".to_string(), num(self.throughput_rps));
        root.insert("overall".to_string(), summary_json(&self.overall));
        root.insert("engines".to_string(), Value::Object(engines));
        root.insert("cache".to_string(), Value::Object(cache));
        root.insert("serp_cache".to_string(), Value::Object(serp_cache));
        root.insert("kernel".to_string(), Value::Object(kernel));
        root.insert("batch".to_string(), Value::Object(batch));
        root.insert("single_flight".to_string(), Value::Object(single_flight));
        root.insert("resilience".to_string(), Value::Object(resilience));
        if self.live.events > 0 {
            let mut live = BTreeMap::new();
            live.insert("events".to_string(), num(self.live.events as f64));
            live.insert("flushes".to_string(), num(self.live.flushes as f64));
            live.insert("compactions".to_string(), num(self.live.compactions as f64));
            live.insert("segments".to_string(), num(self.live.segments as f64));
            live.insert(
                "memtable_docs".to_string(),
                num(self.live.memtable_docs as f64),
            );
            live.insert("live_docs".to_string(), num(self.live.live_docs as f64));
            root.insert("live".to_string(), Value::Object(live));
        }
        root.insert(
            "histogram_counts".to_string(),
            Value::Array(
                self.histogram
                    .counts()
                    .iter()
                    .map(|&c| num(c as f64))
                    .collect(),
            ),
        );
        Value::Object(root)
    }

    /// `to_json` serialized to a string.
    pub fn to_json_string(&self) -> String {
        json_to_string(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HISTOGRAM_BINS, HISTOGRAM_MAX_MS};

    fn snapshot() -> MetricsSnapshot {
        let mut histogram = Histogram::new(0.0, HISTOGRAM_MAX_MS, HISTOGRAM_BINS);
        histogram.record(3.0);
        histogram.record(7.0);
        MetricsSnapshot {
            elapsed_secs: 1.5,
            completed: 2,
            overloaded: 1,
            timed_out: 0,
            cache_hits_served: 1,
            retries: 3,
            served_stale: 1,
            served_degraded: 2,
            engine_failures: 4,
            breaker_rejections: 1,
            failed: 1,
            refreshes: 1,
            throughput_rps: 2.0 / 1.5,
            overall: EngineLatencySummary::of(&[3.0, 7.0]),
            engines: EngineKind::ALL
                .iter()
                .map(|&k| EngineLatency::from_samples(k, &[5.0]))
                .collect(),
            histogram,
            cache: CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                expirations: 0,
                inserts: 1,
                stale_hits: 1,
            },
            serp_cache: SerpCacheStats {
                hits: 6,
                misses: 4,
                inserts: 4,
                evictions: 2,
            },
            kernel: KernelStats {
                docs_scored: 1234,
                candidates_pruned: 567,
                scratch_fallbacks: 0,
            },
            batch: BatchServeStats {
                batches: 4,
                batched_jobs: 10,
                max_batch: 5,
            },
            single_flight: SingleFlightStats {
                leaders: 3,
                waiters: 9,
            },
            live: LiveServeStats {
                events: 90,
                flushes: 4,
                compactions: 1,
                segments: 3,
                memtable_docs: 12,
                live_docs: 80,
            },
        }
    }

    #[test]
    fn render_mentions_every_engine() {
        let text = snapshot().render();
        for kind in EngineKind::ALL {
            assert!(text.contains(kind.name()), "missing {}", kind.name());
        }
        assert!(text.contains("p99 ms"));
        assert!(text.contains("hit rate 50.0%"));
    }

    #[test]
    fn json_round_trips() {
        let json = snapshot().to_json_string();
        let parsed = shift_freshness::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("completed"),
            Some(&Value::Number(2.0)),
            "completed survives the round trip"
        );
        assert!(parsed.get("engines").and_then(|e| e.get("gpt4o")).is_some());
        assert!(parsed
            .get("cache")
            .and_then(|c| c.get("hit_rate"))
            .is_some());
        assert_eq!(
            parsed.get("resilience").and_then(|r| r.get("retries")),
            Some(&Value::Number(3.0)),
            "resilience counters survive the round trip"
        );
        assert!(parsed
            .get("cache")
            .and_then(|c| c.get("stale_hits"))
            .is_some());
        assert_eq!(
            parsed.get("serp_cache").and_then(|c| c.get("hit_rate")),
            Some(&Value::Number(0.6)),
            "serp cache counters survive the round trip"
        );
        assert_eq!(
            parsed.get("kernel").and_then(|k| k.get("docs_scored")),
            Some(&Value::Number(1234.0)),
            "kernel counters survive the round trip"
        );
        assert_eq!(
            parsed
                .get("kernel")
                .and_then(|k| k.get("scratch_fallbacks")),
            Some(&Value::Number(0.0)),
            "scratch fallbacks survive the round trip"
        );
        assert_eq!(
            parsed.get("batch").and_then(|b| b.get("mean_batch")),
            Some(&Value::Number(2.5)),
            "batch counters survive the round trip"
        );
        assert_eq!(
            parsed
                .get("single_flight")
                .and_then(|s| s.get("collapse_rate")),
            Some(&Value::Number(0.75)),
            "single-flight counters survive the round trip"
        );
        assert_eq!(
            parsed.get("live").and_then(|l| l.get("flushes")),
            Some(&Value::Number(4.0)),
            "live-index counters survive the round trip"
        );
    }

    #[test]
    fn live_section_is_omitted_without_events() {
        let mut snap = snapshot();
        snap.live = LiveServeStats::default();
        let json = snap.to_json_string();
        let parsed = shift_freshness::json::parse(&json).expect("valid JSON");
        assert!(
            parsed.get("live").is_none(),
            "no live section without live events"
        );
        assert!(!snap.render().contains("live index"));
    }

    #[test]
    fn render_mentions_resilience() {
        let text = snapshot().render();
        assert!(text.contains("retries"));
        assert!(text.contains("degraded"));
    }
}
