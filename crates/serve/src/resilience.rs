//! Resilience machinery: budgeted retries with deterministic jitter and a
//! lock-free per-engine circuit breaker.
//!
//! The pieces compose into the service's degradation ladder (see
//! [`crate::service`]):
//!
//! 1. **Retries** — a failed attempt is retried with jittered exponential
//!    backoff. The jitter derives from the request seed via SplitMix64, so
//!    replays back off identically; a backoff that would not fit in the
//!    request's remaining deadline budget is never taken (zero budget ⇒
//!    zero retries).
//! 2. **Circuit breaker** — one [`CircuitBreaker`] per engine counts
//!    consecutive failures; at the threshold it opens and rejects the next
//!    `cooldown` requests outright, then lets exactly one probe through
//!    (half-open). A successful probe closes the breaker; a failed probe
//!    reopens it for another cooldown. The cooldown is counted in
//!    *requests*, not wall-clock time, so breaker behaviour is
//!    reproducible in serial chaos runs.
//! 3. **Degradation** — when retries and the breaker both give up, the
//!    service falls back to a stale cache entry and finally to the organic
//!    Google SERP; [`Degradation`] tags the served answer with how far
//!    down the ladder it came from.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::time::Duration;

use shift_engines::EngineKind;
use shift_metrics::bootstrap::SplitMix64;

/// Resilience policy of one [`crate::AnswerService`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Master switch: disabled means one attempt per request, no breaker
    /// and no degradation — the pre-resilience behaviour.
    pub enabled: bool,
    /// Maximum retry attempts after the first try (`0` = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound of the exponential backoff.
    pub max_backoff: Duration,
    /// Consecutive failures that trip an engine's breaker open.
    pub breaker_threshold: u32,
    /// Requests rejected while open before a half-open probe is allowed.
    pub breaker_cooldown: u32,
    /// Fall back to an expired cache entry when the engine fails.
    pub degrade_to_stale: bool,
    /// Fall back to the Google organic SERP as the last resort.
    pub degrade_to_serp: bool,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            enabled: true,
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
            breaker_threshold: 5,
            breaker_cooldown: 16,
            degrade_to_stale: true,
            degrade_to_serp: true,
        }
    }
}

impl ResilienceConfig {
    /// The pre-resilience behaviour: one attempt, fail hard.
    pub fn disabled() -> ResilienceConfig {
        ResilienceConfig {
            enabled: false,
            ..ResilienceConfig::default()
        }
    }
}

/// How far down the degradation ladder a served answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Degradation {
    /// Full fidelity: the requested engine answered.
    None,
    /// The engine failed; an expired cache entry was served and a
    /// background refresh was enqueued (stale-while-revalidate).
    Stale,
    /// The engine failed and no stale entry existed; the Google organic
    /// SERP was served as a citation-only answer.
    SerpFallback,
}

impl Degradation {
    /// True for anything below full fidelity.
    pub fn is_degraded(self) -> bool {
        self != Degradation::None
    }
}

/// Salt of the backoff jitter stream.
const BACKOFF_SALT: u64 = 0x4241_434b_4f46_4621;

/// The jittered exponential backoff before retry `attempt` (1-based) of a
/// request with the given seed.
///
/// Deterministic: the jitter comes from SplitMix64 over `(seed, attempt)`,
/// scaling the capped exponential delay into `[50 %, 100 %]` of its
/// nominal value — same request, same retry, same backoff, every run.
pub fn retry_backoff(config: &ResilienceConfig, seed: u64, attempt: u32) -> Duration {
    debug_assert!(attempt >= 1, "attempt 0 is the first try, not a retry");
    let doubling = 1u32 << (attempt.saturating_sub(1)).min(16);
    let nominal = config
        .base_backoff
        .saturating_mul(doubling)
        .min(config.max_backoff);
    let mut rng = SplitMix64::new(
        seed ^ BACKOFF_SALT ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    nominal.mul_f64(0.5 + 0.5 * unit)
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests are rejected outright for the rest of the cooldown.
    Open,
    /// One probe request is in flight; everyone else is rejected.
    HalfOpen,
}

/// What the breaker says about one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: proceed normally.
    Admit,
    /// The cooldown just elapsed and this request is the half-open probe:
    /// it gets exactly one attempt, and its outcome decides the state.
    Probe,
    /// Open (or a probe is already in flight): skip the engine entirely.
    Reject,
}

/// A three-state circuit breaker over lock-free atomics.
///
/// `closed → open` on `threshold` consecutive failures; `open →
/// half-open` after `cooldown` rejected requests; `half-open → closed` on
/// probe success, `half-open → open` on probe failure. All transitions
/// are CAS-driven — no locks on the serving hot path.
pub struct CircuitBreaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    cooldown_left: AtomicU32,
    threshold: u32,
    cooldown: u32,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and cooling down for `cooldown` rejected requests.
    pub fn new(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker {
            state: AtomicU8::new(CLOSED),
            consecutive_failures: AtomicU32::new(0),
            cooldown_left: AtomicU32::new(0),
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Current state (racy by nature; exact in serial runs).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// True when the breaker currently admits requests normally.
    pub fn is_closed(&self) -> bool {
        self.state.load(Ordering::Acquire) == CLOSED
    }

    /// Route one incoming request through the breaker.
    pub fn admit(&self) -> Admission {
        loop {
            match self.state.load(Ordering::Acquire) {
                CLOSED => return Admission::Admit,
                HALF_OPEN => return Admission::Reject,
                _open => {
                    let left = self.cooldown_left.load(Ordering::Acquire);
                    if left == 0 {
                        // Cooldown spent: race to become the probe.
                        if self
                            .state
                            .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            return Admission::Probe;
                        }
                    } else if self
                        .cooldown_left
                        .compare_exchange(left, left - 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return Admission::Reject;
                    }
                    // Lost a race; re-read the state.
                }
            }
        }
    }

    /// Record a successful attempt: closes the breaker (a probe success
    /// is the designed half-open → closed edge; a success that lands just
    /// after a concurrent trip also closes it, which is sound — the
    /// engine demonstrably works).
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Release);
        self.state.store(CLOSED, Ordering::Release);
    }

    /// Record a failed attempt: counts toward the trip threshold when
    /// closed, reopens immediately when it was the half-open probe.
    pub fn record_failure(&self) {
        match self.state.load(Ordering::Acquire) {
            HALF_OPEN => self.trip(),
            CLOSED => {
                let failures = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
                if failures >= self.threshold {
                    self.trip();
                }
            }
            _already_open => {}
        }
    }

    fn trip(&self) {
        self.cooldown_left.store(self.cooldown, Ordering::Release);
        self.consecutive_failures.store(0, Ordering::Release);
        self.state.store(OPEN, Ordering::Release);
    }
}

/// One breaker per engine, indexed by [`EngineKind::index`].
pub struct BreakerSet {
    breakers: [CircuitBreaker; 5],
}

impl BreakerSet {
    /// Fresh closed breakers with the configured threshold/cooldown.
    pub fn new(config: &ResilienceConfig) -> BreakerSet {
        BreakerSet {
            breakers: std::array::from_fn(|_| {
                CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown)
            }),
        }
    }

    /// The breaker guarding one engine.
    pub fn of(&self, kind: EngineKind) -> &CircuitBreaker {
        &self.breakers[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_the_full_state_machine() {
        let b = CircuitBreaker::new(3, 2);
        assert_eq!(b.state(), BreakerState::Closed);

        // Two failures stay under the threshold.
        for _ in 0..2 {
            assert_eq!(b.admit(), Admission::Admit);
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // Third consecutive failure trips it open.
        assert_eq!(b.admit(), Admission::Admit);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);

        // Cooldown of 2: two rejections, then the probe slot.
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Probe fails: reopen for another full cooldown.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Probe);

        // Probe succeeds: closed, counters reset.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Admit);

        // An intervening success resets the consecutive count.
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "2 + 2 around a success never trips"
        );
    }

    #[test]
    fn while_probe_in_flight_others_are_rejected() {
        let b = CircuitBreaker::new(1, 0);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: first admit becomes the probe immediately…
        assert_eq!(b.admit(), Admission::Probe);
        // …and concurrent arrivals are rejected until the probe settles.
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Reject);
        b.record_success();
        assert_eq!(b.admit(), Admission::Admit);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let config = ResilienceConfig::default();
        for attempt in 1..=6u32 {
            let a = retry_backoff(&config, 0xFEED, attempt);
            let b = retry_backoff(&config, 0xFEED, attempt);
            assert_eq!(a, b, "same seed/attempt must back off identically");
            assert!(
                a <= config.max_backoff,
                "attempt {attempt} exceeded the cap"
            );
            assert!(
                a >= config.base_backoff / 2,
                "jitter floor is half the nominal delay"
            );
        }
        // Different seeds actually jitter.
        let spread = (0..32u64)
            .map(|s| retry_backoff(&config, s, 1))
            .collect::<std::collections::HashSet<_>>();
        assert!(spread.len() > 16, "jitter must spread across seeds");
    }

    #[test]
    fn backoff_grows_until_the_cap() {
        let config = ResilienceConfig {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..ResilienceConfig::default()
        };
        // Nominal (pre-jitter) delays: 1, 2, 4, 4, 4 ms. With jitter in
        // [0.5, 1.0], attempt 3+ can never fall below half the cap.
        let late = retry_backoff(&config, 9, 5);
        assert!(late >= Duration::from_millis(2));
        assert!(late <= Duration::from_millis(4));
        let early = retry_backoff(&config, 9, 1);
        assert!(early <= Duration::from_millis(1));
    }

    #[test]
    fn zero_budget_admits_zero_retries() {
        // The service's retry loop takes a backoff only when it is
        // strictly smaller than the remaining deadline budget. A backoff
        // is never negative, so a zero budget can never admit one.
        let config = ResilienceConfig::default();
        for attempt in 1..=4u32 {
            let backoff = retry_backoff(&config, 7, attempt);
            assert!(backoff >= Duration::ZERO);
            let remaining = Duration::ZERO;
            assert!(
                backoff >= remaining,
                "zero remaining budget must reject every retry"
            );
        }
    }

    #[test]
    fn breaker_set_is_per_engine() {
        let set = BreakerSet::new(&ResilienceConfig {
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        set.of(EngineKind::Gemini).record_failure();
        assert_eq!(set.of(EngineKind::Gemini).state(), BreakerState::Open);
        for kind in [
            EngineKind::Google,
            EngineKind::Gpt4o,
            EngineKind::Claude,
            EngineKind::Perplexity,
        ] {
            assert_eq!(
                set.of(kind).state(),
                BreakerState::Closed,
                "{kind:?} must be isolated"
            );
        }
    }

    #[test]
    fn degradation_levels() {
        assert!(!Degradation::None.is_degraded());
        assert!(Degradation::Stale.is_degraded());
        assert!(Degradation::SerpFallback.is_degraded());
    }
}
