//! Sharded, TTL-aware LRU answer cache.
//!
//! Keys normalize the query through [`shift_textkit::tokenize`], so
//! `"Best Laptops  2025?"` and `"best laptops 2025"` share an entry. Each
//! shard is an independent `parking_lot::Mutex` around a slab-backed
//! intrusive LRU list, so concurrent lookups on different shards never
//! contend. Expiry is lazy: an entry past its TTL is treated as a miss
//! (and reclaimed) the next time it is touched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shift_engines::{EngineAnswer, EngineKind};
use shift_textkit::tokenize;

/// Geometry and policy of one [`AnswerCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of independent shards (rounded up to at least 1).
    pub shards: usize,
    /// LRU capacity of each shard; 0 disables the cache entirely.
    pub capacity_per_shard: usize,
    /// Time-to-live of an entry; `None` means entries never expire.
    pub ttl: Option<Duration>,
    /// Keep expired entries resident (still reported as misses by
    /// [`AnswerCache::get`]) so the resilience layer can serve them via
    /// [`AnswerCache::get_stale`] when the engine is down.
    pub keep_stale: bool,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 512,
            ttl: Some(Duration::from_secs(300)),
            keep_stale: false,
        }
    }
}

impl CacheConfig {
    /// A configuration that caches nothing.
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            shards: 1,
            capacity_per_shard: 0,
            ttl: None,
            keep_stale: false,
        }
    }

    /// Every entry is stale the instant it is inserted, but stays
    /// resident for stale serving. Used by the chaos harness: the fresh
    /// fast path never fires (so every request exercises the engine and
    /// its fault injector), while the stale-degradation ladder stays
    /// fully stocked — and no wall-clock TTL race can perturb the run.
    pub fn always_stale() -> CacheConfig {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 512,
            ttl: Some(Duration::ZERO),
            keep_stale: true,
        }
    }
}

/// Identity of a cacheable answer: engine, answer depth, seed, and the
/// token-normalized query text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which engine answered.
    pub engine: EngineKind,
    /// Requested answer depth (top-k).
    pub top_k: usize,
    /// Decode/persona seed the answer was produced with.
    pub seed: u64,
    /// Query text after tokenization (lowercased, punctuation and
    /// whitespace collapsed).
    pub normalized: String,
}

impl CacheKey {
    /// Build a key, normalizing `query` through the shared tokenizer.
    pub fn new(engine: EngineKind, query: &str, top_k: usize, seed: u64) -> CacheKey {
        let normalized = tokenize(query)
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        CacheKey {
            engine,
            top_k,
            seed,
            normalized,
        }
    }

    /// FNV-1a hash of the key, used for shard routing.
    pub fn route_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(self.engine.index() as u8);
        for b in (self.top_k as u64).to_le_bytes() {
            eat(b);
        }
        for b in self.seed.to_le_bytes() {
            eat(b);
        }
        for b in self.normalized.as_bytes() {
            eat(*b);
        }
        h
    }
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries reclaimed because their TTL elapsed.
    pub expirations: u64,
    /// Successful inserts (including overwrites of an existing key).
    pub inserts: u64,
    /// Expired entries served anyway through [`AnswerCache::get_stale`]
    /// (the stale-while-revalidate degradation path).
    pub stale_hits: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    answer: EngineAnswer,
    inserted: Instant,
    prev: usize,
    next: usize,
}

/// One shard: a slab of entries threaded onto an intrusive MRU→LRU list,
/// plus a key→slot map. All list surgery is O(1).
struct Shard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn remove_slot(&mut self, slot: usize) {
        self.unlink(slot);
        self.map.remove(&self.slab[slot].key);
        self.free.push(slot);
    }
}

/// A sharded TTL LRU mapping [`CacheKey`]s to [`EngineAnswer`]s.
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    ttl: Option<Duration>,
    keep_stale: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    inserts: AtomicU64,
    stale_hits: AtomicU64,
}

impl AnswerCache {
    /// Build a cache with the given geometry.
    pub fn new(config: &CacheConfig) -> AnswerCache {
        let shards = config.shards.max(1);
        AnswerCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(config.capacity_per_shard)))
                .collect(),
            capacity_per_shard: config.capacity_per_shard,
            ttl: config.ttl,
            keep_stale: config.keep_stale,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
        }
    }

    /// True when the cache stores nothing (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.capacity_per_shard == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key routes to.
    pub fn shard_for(&self, key: &CacheKey) -> usize {
        (key.route_hash() % self.shards.len() as u64) as usize
    }

    /// Live entries across all shards (expired-but-unreclaimed entries
    /// still count; they are reclaimed lazily on touch).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<EngineAnswer> {
        if self.is_disabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shards[self.shard_for(key)].lock();
        let Some(&slot) = shard.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if let Some(ttl) = self.ttl {
            if shard.slab[slot].inserted.elapsed() >= ttl {
                if self.keep_stale {
                    // A miss for the fresh path, but the entry stays
                    // resident for `get_stale`.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                shard.remove_slot(slot);
                self.expirations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        shard.unlink(slot);
        shard.push_front(slot);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(shard.slab[slot].answer.clone())
    }

    /// Look up a key ignoring TTL — the stale-serving degradation path.
    ///
    /// Returns whatever is resident, fresh or expired, refreshing its
    /// recency so a repeatedly stale-served entry is not the next LRU
    /// victim. Counts a `stale_hits` stat instead of a regular hit.
    pub fn get_stale(&self, key: &CacheKey) -> Option<EngineAnswer> {
        if self.is_disabled() {
            return None;
        }
        let mut shard = self.shards[self.shard_for(key)].lock();
        let &slot = shard.map.get(key)?;
        shard.unlink(slot);
        shard.push_front(slot);
        self.stale_hits.fetch_add(1, Ordering::Relaxed);
        Some(shard.slab[slot].answer.clone())
    }

    /// Insert (or overwrite) an answer, evicting the least-recently-used
    /// entry of the target shard if it is full.
    pub fn insert(&self, key: CacheKey, answer: EngineAnswer) {
        if self.is_disabled() {
            return;
        }
        let shard_idx = self.shard_for(&key);
        let mut shard = self.shards[shard_idx].lock();
        if let Some(&slot) = shard.map.get(&key) {
            shard.slab[slot].answer = answer;
            shard.slab[slot].inserted = Instant::now();
            shard.unlink(slot);
            shard.push_front(slot);
            self.inserts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if shard.map.len() >= self.capacity_per_shard {
            let victim = shard.tail;
            debug_assert_ne!(victim, NIL);
            shard.remove_slot(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let entry = Entry {
            key: key.clone(),
            answer,
            inserted: Instant::now(),
            prev: NIL,
            next: NIL,
        };
        let slot = match shard.free.pop() {
            Some(slot) => {
                shard.slab[slot] = entry;
                slot
            }
            None => {
                shard.slab.push(entry);
                shard.slab.len() - 1
            }
        };
        shard.map.insert(key, slot);
        shard.push_front(slot);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
        }
    }

    /// Keys currently resident in one shard, MRU first (test support).
    pub fn shard_keys(&self, shard: usize) -> Vec<CacheKey> {
        let shard = self.shards[shard].lock();
        let mut keys = Vec::with_capacity(shard.map.len());
        let mut slot = shard.head;
        while slot != NIL {
            keys.push(shard.slab[slot].key.clone());
            slot = shard.slab[slot].next;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(text: &str) -> EngineAnswer {
        EngineAnswer {
            engine: EngineKind::Google,
            query: text.to_string(),
            citations: Vec::new(),
            snippets: Vec::new(),
            text: text.to_string(),
        }
    }

    fn single_shard(capacity: usize) -> AnswerCache {
        AnswerCache::new(&CacheConfig {
            shards: 1,
            capacity_per_shard: capacity,
            ttl: None,
            keep_stale: false,
        })
    }

    #[test]
    fn key_normalizes_case_and_punctuation() {
        let a = CacheKey::new(EngineKind::Gpt4o, "Best Laptops,  2025!?", 10, 1);
        let b = CacheKey::new(EngineKind::Gpt4o, "best laptops 2025", 10, 1);
        assert_eq!(a, b);
        let c = CacheKey::new(EngineKind::Claude, "best laptops 2025", 10, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn get_refreshes_recency() {
        let cache = single_shard(2);
        let k1 = CacheKey::new(EngineKind::Google, "alpha", 10, 0);
        let k2 = CacheKey::new(EngineKind::Google, "beta", 10, 0);
        let k3 = CacheKey::new(EngineKind::Google, "gamma", 10, 0);
        cache.insert(k1.clone(), answer("a"));
        cache.insert(k2.clone(), answer("b"));
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3.clone(), answer("c"));
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k2).is_none(), "k2 should have been evicted");
        assert!(cache.get(&k3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let cache = single_shard(4);
        let k = CacheKey::new(EngineKind::Gemini, "same query", 10, 7);
        cache.insert(k.clone(), answer("v1"));
        cache.insert(k.clone(), answer("v2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&k).unwrap().text, "v2");
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = AnswerCache::new(&CacheConfig::disabled());
        let k = CacheKey::new(EngineKind::Google, "anything", 10, 0);
        cache.insert(k.clone(), answer("x"));
        assert!(cache.get(&k).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = AnswerCache::new(&CacheConfig {
            shards: 1,
            capacity_per_shard: 8,
            ttl: Some(Duration::from_millis(20)),
            keep_stale: false,
        });
        let k = CacheKey::new(EngineKind::Perplexity, "ephemeral", 10, 3);
        cache.insert(k.clone(), answer("x"));
        assert!(cache.get(&k).is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get(&k).is_none());
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert!(cache.is_empty(), "expired entry must be reclaimed");
    }

    #[test]
    fn keys_route_to_stable_shards() {
        let cache = AnswerCache::new(&CacheConfig {
            shards: 8,
            capacity_per_shard: 64,
            ttl: None,
            keep_stale: false,
        });
        assert_eq!(cache.shard_count(), 8);
        let keys: Vec<CacheKey> = (0..64)
            .map(|i| CacheKey::new(EngineKind::Gpt4o, &format!("query number {i}"), 10, 0))
            .collect();
        for k in &keys {
            cache.insert(k.clone(), answer("x"));
        }
        let mut used = std::collections::HashSet::new();
        for k in &keys {
            let shard = cache.shard_for(k);
            assert_eq!(shard, cache.shard_for(k), "routing must be stable");
            assert!(
                cache.shard_keys(shard).contains(k),
                "key must live in the shard it routes to"
            );
            used.insert(shard);
        }
        assert!(
            used.len() > 1,
            "64 distinct keys must spread over more than one of 8 shards"
        );
        let resident: usize = (0..8).map(|s| cache.shard_keys(s).len()).sum();
        assert_eq!(resident, 64);
    }

    #[test]
    fn keep_stale_entries_survive_expiry_for_stale_serving() {
        let cache = AnswerCache::new(&CacheConfig {
            shards: 1,
            capacity_per_shard: 8,
            ttl: Some(Duration::ZERO),
            keep_stale: true,
        });
        let k = CacheKey::new(EngineKind::Claude, "stale but useful", 10, 5);
        cache.insert(k.clone(), answer("the cached bytes"));
        // Zero TTL: the fresh path always misses…
        assert!(cache.get(&k).is_none());
        assert!(cache.get(&k).is_none());
        // …but the entry stays resident and stale-servable, bytes intact.
        assert_eq!(cache.get_stale(&k).unwrap().text, "the cached bytes");
        let stats = cache.stats();
        assert_eq!(stats.stale_hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.expirations, 0, "keep_stale must not reclaim");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_stale_misses_on_absent_key() {
        let cache = AnswerCache::new(&CacheConfig::always_stale());
        let k = CacheKey::new(EngineKind::Gemini, "never inserted", 10, 0);
        assert!(cache.get_stale(&k).is_none());
        assert_eq!(cache.stats().stale_hits, 0);
    }

    #[test]
    fn get_stale_refreshes_recency() {
        let cache = single_shard(2);
        let k1 = CacheKey::new(EngineKind::Google, "alpha", 10, 0);
        let k2 = CacheKey::new(EngineKind::Google, "beta", 10, 0);
        let k3 = CacheKey::new(EngineKind::Google, "gamma", 10, 0);
        cache.insert(k1.clone(), answer("a"));
        cache.insert(k2.clone(), answer("b"));
        // Stale-touch k1 so k2 becomes the LRU victim.
        assert!(cache.get_stale(&k1).is_some());
        cache.insert(k3, answer("c"));
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k2).is_none(), "k2 should have been evicted");
    }

    #[test]
    fn hit_rate_counts() {
        let cache = single_shard(8);
        let k = CacheKey::new(EngineKind::Google, "q", 10, 0);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), answer("x"));
        assert!(cache.get(&k).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }
}
