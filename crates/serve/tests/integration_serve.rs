//! End-to-end service test: 1 000 mixed requests over 4 workers, with the
//! acceptance property of ISSUE-level importance — a cached service and an
//! uncached service produce byte-identical answers for the same seeds.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use shift_corpus::{World, WorldConfig};
use shift_engines::{AnswerEngines, EngineAnswer, EngineKind};
use shift_serve::{run_load, AnswerService, CacheKey, LoadConfig, LoadMode, ServeConfig, Workload};

fn engines() -> Arc<AnswerEngines> {
    let world = Arc::new(World::generate(&WorldConfig::small(), 20251101));
    Arc::new(AnswerEngines::build(world))
}

/// Everything that makes an answer an answer, flattened for comparison.
fn fingerprint(answer: &EngineAnswer) -> String {
    let mut out = String::new();
    out.push_str(answer.engine.slug());
    out.push('\x1f');
    out.push_str(&answer.query);
    out.push('\x1f');
    out.push_str(&answer.text);
    for c in &answer.citations {
        out.push('\x1f');
        out.push_str(&c.url);
    }
    for s in &answer.snippets {
        out.push('\x1f');
        out.push_str(&s.text);
    }
    out
}

#[test]
fn thousand_mixed_requests_cached_equals_uncached() {
    let engines = engines();
    let world = engines.world_handle();
    let workload = Workload::mixed(&world, 77);
    let config = LoadConfig {
        requests: 1000,
        engines: EngineKind::ALL.to_vec(),
        top_k: 10,
        mode: LoadMode::Closed { clients: 4 },
        seed: 4242,
    };

    let cached = AnswerService::start(Arc::clone(&engines), ServeConfig::with_workers(4));
    let outcome = run_load(&cached, &workload, &config);
    assert_eq!(
        outcome.succeeded, 1000,
        "closed-loop must answer everything"
    );
    assert_eq!(outcome.total(), 1000);

    let uncached = AnswerService::start(
        Arc::clone(&engines),
        ServeConfig::with_workers(4).without_cache(),
    );
    let outcome_u = run_load(&uncached, &workload, &config);
    assert_eq!(outcome_u.succeeded, 1000);

    // Replay the unique requests of the sequence against both services
    // and demand byte-identical answers. The cached service serves these
    // from cache (the load run populated it); the uncached one recomputes.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut unique: HashMap<CacheKey, shift_serve::Request> = HashMap::new();
    for i in 0..config.requests {
        let req = workload.request_at(&mut rng, i, &config.engines, config.top_k);
        let key = CacheKey::new(req.engine, &req.query, req.top_k, req.seed);
        unique.entry(key).or_insert(req);
    }
    assert!(
        unique.len() < 1000,
        "a Zipfian mix of 1000 draws must contain repeats (got {} unique)",
        unique.len()
    );
    let mut compared = 0;
    for req in unique.values() {
        let warm = cached.answer(req.clone()).expect("cached service answers");
        let cold = uncached
            .answer(req.clone())
            .expect("uncached service answers");
        assert_eq!(
            fingerprint(&warm.answer),
            fingerprint(&cold.answer),
            "cached and uncached answers must be byte-identical for {:?} '{}'",
            req.engine,
            req.query,
        );
        compared += 1;
    }
    assert!(compared > 100, "expected a substantive unique-query set");

    let snap_cached = cached.shutdown();
    let snap_uncached = uncached.shutdown();
    assert!(
        snap_cached.cache.hits > 0,
        "Zipfian repeats must produce cache hits"
    );
    assert!(
        snap_cached.cache.hit_rate() > snap_uncached.cache.hit_rate(),
        "disabled cache must show a strictly lower hit rate"
    );
    assert_eq!(snap_cached.overloaded, 0, "closed loop cannot overload");
    assert_eq!(snap_cached.timed_out, 0);
    // Per-engine sample counts must cover all five engines.
    for engine in &snap_cached.engines {
        assert!(
            engine.summary.count > 0,
            "{} saw no traffic despite round-robin rotation",
            engine.kind.name()
        );
    }
}

#[test]
fn warm_cache_beats_cold_cache() {
    let engines = engines();
    let world = engines.world_handle();
    let workload = Workload::mixed(&world, 5);
    let config = LoadConfig {
        requests: 400,
        engines: EngineKind::ALL.to_vec(),
        top_k: 10,
        mode: LoadMode::Closed { clients: 4 },
        seed: 99,
    };
    let service = AnswerService::start(engines, ServeConfig::with_workers(4));
    run_load(&service, &workload, &config);
    let cold = service.snapshot();

    // Same sequence again: every request is now a repeat.
    run_load(&service, &workload, &config);
    let warm = service.snapshot();

    let cold_rate = cold.cache.hit_rate();
    let warm_rate = warm.cache.hit_rate();
    assert!(
        warm_rate > cold_rate,
        "second pass must raise the hit rate ({cold_rate:.3} → {warm_rate:.3})"
    );
    assert_eq!(
        warm.cache.misses, cold.cache.misses,
        "a fully warmed second pass must add no new misses"
    );
    service.shutdown();
}

proptest! {
    // Key normalization is idempotent: re-keying on the normalized text
    // lands on the same cache entry, whatever the original spelling.
    #[test]
    fn cache_key_normalization_is_idempotent(raw in "\\PC{0,64}", top_k in 1usize..20) {
        let key = CacheKey::new(EngineKind::Claude, &raw, top_k, 7);
        let rekey = CacheKey::new(EngineKind::Claude, &key.normalized, top_k, 7);
        prop_assert_eq!(&key, &rekey);
        prop_assert_eq!(key.route_hash(), rekey.route_hash());
    }
}
