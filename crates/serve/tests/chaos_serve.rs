//! Deterministic chaos tests: the fault-injection + resilience subsystem
//! end to end. Every scenario is seeded — no test here can flake on
//! thread timing, because fault decisions live on seeds and phases, not
//! wall clocks.

use std::sync::Arc;

use shift_corpus::{World, WorldConfig};
use shift_engines::{AnswerEngines, EngineAnswer, EngineKind, QueryScratch};
use shift_serve::{
    run_chaos, AnswerService, BreakerState, CacheConfig, CacheKey, ChaosConfig, Degradation,
    EngineError, FallibleEngines, FaultInjector, FaultPlan, OutageWindow, Request,
    ResilienceConfig, ServeConfig, ServeError,
};

fn engines() -> Arc<AnswerEngines> {
    let world = Arc::new(World::generate(&WorldConfig::small(), 20251101));
    Arc::new(AnswerEngines::build(world))
}

/// Everything that makes an answer an answer, flattened for comparison.
fn fingerprint(answer: &EngineAnswer) -> String {
    let mut out = String::new();
    out.push_str(answer.engine.slug());
    out.push('\x1f');
    out.push_str(&answer.query);
    out.push('\x1f');
    out.push_str(&answer.text);
    for c in &answer.citations {
        out.push('\x1f');
        out.push_str(&c.url);
    }
    for s in &answer.snippets {
        out.push('\x1f');
        out.push_str(&s.text);
    }
    out
}

/// A plan that takes every engine fully down: only degradation can serve.
fn total_outage_plan() -> FaultPlan {
    FaultPlan {
        outages: EngineKind::ALL
            .iter()
            .map(|&engine| OutageWindow {
                engine,
                start: 0.0,
                end: 1.0,
            })
            .collect(),
        ..FaultPlan::zero(3)
    }
}

#[test]
fn same_seed_same_chaos_report() {
    let stack = engines();
    let mut config = ChaosConfig::standard(FaultPlan::standard(7));
    config.requests = 300;
    let first = run_chaos(&stack, &config);
    let second = run_chaos(&stack, &config);
    assert_eq!(
        first, second,
        "identical plan + seeds must reproduce the availability report bit for bit"
    );
    assert_eq!(first.resilient.total(), 300);
    assert_eq!(first.baseline.total(), 300);
}

#[test]
fn resilience_at_least_doubles_availability_under_standard_plan() {
    let stack = engines();
    let config = ChaosConfig::standard(FaultPlan::standard(1));
    let report = run_chaos(&stack, &config);

    // The ladder bottoms out at the local SERP, so the resilient run
    // answers everything the injector throws at it.
    assert!(
        report.availability_resilient() > 0.99,
        "resilient availability {:.3} should be ~1.0",
        report.availability_resilient()
    );
    // The fail-hard baseline eats the raw fault rates: ~50 % of
    // generative attempts fail and the Gemini outage takes out a fifth
    // of the rotation entirely.
    assert!(
        report.availability_baseline() < 0.60,
        "baseline availability {:.3} should reflect the injected faults",
        report.availability_baseline()
    );
    assert!(
        report.ratio() >= 2.0,
        "resilience must at least double availability, got {:.2}x",
        report.ratio()
    );
    // Both degradation rungs must actually fire under the standard plan:
    // stale serves for repeat queries whose retries all failed, SERP
    // fallbacks for (at least) the Gemini outage traffic.
    assert!(report.resilient.served_stale > 0, "stale rung never fired");
    assert!(
        report.resilient.served_degraded > report.resilient.served_stale,
        "SERP rung never fired"
    );
    // The baseline run has no ladder at all.
    assert_eq!(report.baseline.served_degraded, 0);
    assert_eq!(report.baseline.served_stale, 0);
}

#[test]
fn stale_fallback_returns_exact_cached_bytes() {
    let stack = engines();
    let query = "best laptops for students";
    let (engine, top_k, seed) = (EngineKind::Claude, 10, 21u64);
    // The answer we expect back, computed on the bare stack.
    let expected = stack.answer(engine, query, top_k, seed);

    let mut config = ServeConfig::with_workers(1);
    config.cache = CacheConfig::always_stale();
    config.resilience = ResilienceConfig {
        degrade_to_serp: false,
        ..ResilienceConfig::default()
    };
    let service = AnswerService::start_chaos(
        FaultInjector::new(Arc::clone(&stack), total_outage_plan()),
        config,
    );
    // Stock the (instantly stale) cache entry the degradation ladder
    // should find.
    let key = CacheKey::new(engine, query, top_k, seed);
    service.cache().insert(key, expected.clone());

    let served = service
        .answer(Request::new(engine, query, top_k, seed))
        .expect("stale rung must serve despite the total outage");
    assert_eq!(served.degradation, Degradation::Stale);
    assert_eq!(
        fingerprint(&served.answer),
        fingerprint(&expected),
        "a stale serve must return the exact cached bytes"
    );
    let snap = service.shutdown();
    assert_eq!(snap.served_stale, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.cache.stale_hits, 1);
}

#[test]
fn serp_fallback_when_no_stale_entry_exists() {
    let stack = engines();
    let service = AnswerService::start_chaos(
        FaultInjector::new(Arc::clone(&stack), total_outage_plan()),
        ServeConfig::with_workers(1).without_cache(),
    );
    let served = service
        .answer(Request::new(
            EngineKind::Gpt4o,
            "suv comparison 2025",
            10,
            4,
        ))
        .expect("SERP rung must serve despite the total outage");
    assert_eq!(served.degradation, Degradation::SerpFallback);
    assert_eq!(
        served.answer.engine,
        EngineKind::Google,
        "the last rung is the organic Google SERP"
    );
    assert!(
        !served.answer.citations.is_empty(),
        "a SERP fallback is a citation-only answer — it must carry citations"
    );
    let snap = service.shutdown();
    assert_eq!(snap.served_degraded, 1);
    assert_eq!(snap.served_stale, 0);
}

#[test]
fn degraded_unavailable_when_ladder_is_empty() {
    let stack = engines();
    let mut config = ServeConfig::with_workers(1);
    config.cache = CacheConfig::always_stale();
    config.resilience = ResilienceConfig {
        degrade_to_serp: false,
        ..ResilienceConfig::default()
    };
    let service = AnswerService::start_chaos(
        FaultInjector::new(Arc::clone(&stack), total_outage_plan()),
        config,
    );
    // Nothing was ever cached for this key, and SERP fallback is off.
    let err = service
        .answer(Request::new(
            EngineKind::Perplexity,
            "uncached query",
            10,
            8,
        ))
        .expect_err("an empty ladder must fail typed");
    assert_eq!(
        err,
        ServeError::DegradedUnavailable {
            engine: EngineKind::Perplexity
        }
    );
    let snap = service.shutdown();
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.completed, 0);
}

#[test]
fn breaker_walks_its_states_under_scripted_failures() {
    let stack = engines();
    let engine = EngineKind::Gpt4o;
    let mut config = ServeConfig::with_workers(1).without_cache();
    config.resilience = ResilienceConfig {
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown: 3,
        degrade_to_stale: false,
        degrade_to_serp: false,
        ..ResilienceConfig::default()
    };
    let plan = FaultPlan {
        outages: vec![OutageWindow {
            engine,
            start: 0.0,
            end: 1.0,
        }],
        ..FaultPlan::zero(5)
    };
    let service = AnswerService::start_chaos(FaultInjector::new(Arc::clone(&stack), plan), config);

    // threshold 2, cooldown 3, one failing attempt per request:
    // two engine failures trip the breaker, three rejections cool it
    // down, the half-open probe fails and re-trips it, and so on.
    let expected = [
        ServeError::EngineFailed { engine }, // failure 1 (closed)
        ServeError::EngineFailed { engine }, // failure 2 → trips open
        ServeError::BreakerOpen { engine },  // cooldown 3
        ServeError::BreakerOpen { engine },  // cooldown 2
        ServeError::BreakerOpen { engine },  // cooldown 1
        ServeError::EngineFailed { engine }, // half-open probe fails → re-trip
        ServeError::BreakerOpen { engine },
        ServeError::BreakerOpen { engine },
        ServeError::BreakerOpen { engine },
        ServeError::EngineFailed { engine }, // next probe
    ];
    for (i, want) in expected.iter().enumerate() {
        let got = service
            .answer(Request::new(
                engine,
                &format!("scripted query {i}"),
                10,
                i as u64,
            ))
            .expect_err("total outage with an empty ladder cannot serve");
        assert_eq!(got, *want, "request {i} took the wrong breaker path");
    }
    assert_eq!(service.breakers().of(engine).state(), BreakerState::Open);
    assert_eq!(
        service.breakers().of(EngineKind::Google).state(),
        BreakerState::Closed,
        "healthy engines keep closed breakers"
    );
    let snap = service.shutdown();
    assert_eq!(snap.engine_failures, 4);
    assert_eq!(snap.breaker_rejections, 6);
    assert_eq!(snap.retries, 0, "max_retries 0 must never retry");
}

/// A test double that fails the first attempt of every request and
/// succeeds on any retry — the shape that exposes double-counting bugs.
struct FlakyFirstAttempt {
    stack: Arc<AnswerEngines>,
}

impl FallibleEngines for FlakyFirstAttempt {
    fn stack(&self) -> &AnswerEngines {
        &self.stack
    }

    fn try_answer_with(
        &self,
        scratch: &mut QueryScratch,
        kind: EngineKind,
        query: &str,
        k: usize,
        seed: u64,
        attempt: u32,
    ) -> Result<EngineAnswer, EngineError> {
        if attempt == 0 {
            Err(EngineError::Transient)
        } else {
            Ok(self.stack.answer_with(scratch, kind, query, k, seed))
        }
    }
}

#[test]
fn retried_then_successful_request_is_counted_once() {
    let stack = engines();
    let mut config = ServeConfig::with_workers(1).without_cache();
    // Keep the breaker out of the way: every request fails exactly once,
    // and consecutive first-attempt failures must not trip anything.
    config.resilience.breaker_threshold = 1_000;
    let service = AnswerService::start_fallible(
        Arc::clone(&stack),
        Arc::new(FlakyFirstAttempt {
            stack: Arc::clone(&stack),
        }),
        config,
    );
    let n = 10u64;
    for i in 0..n {
        let served = service
            .answer(Request::new(
                EngineKind::Claude,
                &format!("flaky query {i}"),
                10,
                i,
            ))
            .expect("one retry suffices");
        assert_eq!(served.degradation, Degradation::None);
    }
    let snap = service.shutdown();
    assert_eq!(
        snap.completed, n,
        "a retried-then-successful request must be served exactly once"
    );
    assert_eq!(snap.retries, n, "each request took exactly one retry");
    assert_eq!(snap.engine_failures, n);
    assert_eq!(snap.served_degraded, 0);
    assert_eq!(snap.failed, 0);
}

#[test]
fn backoff_that_exceeds_the_budget_means_no_retry() {
    let stack = engines();
    let mut config = ServeConfig::with_workers(1).without_cache();
    // A retry would succeed (FlakyFirstAttempt), but the backoff can
    // never fit the deadline budget — so no retry may ever be taken.
    config.resilience = ResilienceConfig {
        base_backoff: std::time::Duration::from_secs(3600),
        max_backoff: std::time::Duration::from_secs(7200),
        breaker_threshold: 1_000,
        degrade_to_stale: false,
        degrade_to_serp: false,
        ..ResilienceConfig::default()
    };
    let service = AnswerService::start_fallible(
        Arc::clone(&stack),
        Arc::new(FlakyFirstAttempt {
            stack: Arc::clone(&stack),
        }),
        config,
    );
    for i in 0..5u64 {
        let err = service
            .answer(Request::new(
                EngineKind::Gemini,
                &format!("budgetless query {i}"),
                10,
                i,
            ))
            .expect_err("without a retry the first attempt's failure is final");
        assert_eq!(
            err,
            ServeError::EngineFailed {
                engine: EngineKind::Gemini
            }
        );
    }
    let snap = service.shutdown();
    assert_eq!(
        snap.retries, 0,
        "a backoff that exceeds the remaining budget must never be taken"
    );
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.failed, 5);
}

#[test]
fn zero_fault_plan_is_byte_identical_to_the_non_resilient_path() {
    let stack = engines();
    // Resilience armed behind a zero-fault injector...
    let chaos = AnswerService::start_chaos(
        FaultInjector::new(Arc::clone(&stack), FaultPlan::zero(9)),
        ServeConfig::with_workers(1).without_cache(),
    );
    // ...versus the bare fail-hard path with no injector at all.
    let plain = AnswerService::start(
        Arc::clone(&stack),
        ServeConfig::with_workers(1)
            .without_cache()
            .without_resilience(),
    );
    for i in 0..25u64 {
        let engine = EngineKind::ALL[(i % 5) as usize];
        let req = Request::new(engine, &format!("identity probe {i}"), 10, i);
        let a = chaos.answer(req.clone()).expect("zero plan cannot fail");
        let b = plain.answer(req).expect("infallible stack");
        assert_eq!(a.degradation, Degradation::None);
        assert_eq!(
            fingerprint(&a.answer),
            fingerprint(&b.answer),
            "zero-fault resilient serving must not perturb answer bytes ({engine:?})"
        );
    }
    let snap = chaos.shutdown();
    assert_eq!(snap.retries, 0);
    assert_eq!(snap.engine_failures, 0);
    assert_eq!(snap.served_degraded, 0);
    plain.shutdown();
}
