//! # shift-freshness
//!
//! Page-level publication-date extraction, reproducing the paper's §2.3
//! methodology: *"extract page-level publication or update dates (HTML meta,
//! JSON-LD, `<time>` tags, and body text) to compute source age in days."*
//!
//! The pipeline in [`extract`] mirrors that priority order:
//!
//! 1. `<meta>` tags (`article:published_time`, `datePublished`, `date`, …)
//! 2. JSON-LD `<script type="application/ld+json">` blocks
//!    (`datePublished` / `dateModified` on `Article`-like objects)
//! 3. `<time datetime="…">` elements
//! 4. Visible body text ("Published March 14, 2025", bare dates)
//!
//! Supporting modules are deliberately self-contained (no dependencies):
//!
//! * [`civil`] — proleptic-Gregorian day arithmetic (Hinnant's algorithms).
//! * [`json`] — a compact JSON parser sufficient for real-world JSON-LD.
//! * [`html`] — a tolerant HTML tag scanner (no DOM, single pass).
//! * [`dates`] — multi-format date-string parsing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod civil;
pub mod dates;
pub mod extract;
pub mod html;
pub mod json;

pub use civil::CivilDate;
pub use dates::parse_date;
pub use extract::{extract_page_date, DateSource, ExtractedDate};
