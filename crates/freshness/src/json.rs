//! A compact JSON parser and writer.
//!
//! JSON-LD blocks on real pages are plain JSON; this module implements the
//! full JSON grammar (RFC 8259) minus only exotic number edge cases, with
//! recursion-depth and input-size guards so hostile pages cannot blow the
//! stack. It exists because `serde_json` is outside the sanctioned
//! dependency set — see DESIGN.md §5.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized to lexicographic).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the string content if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Array elements; empty slice for non-arrays.
    pub fn as_array(&self) -> &[Value] {
        match self {
            Value::Array(items) => items,
            _ => &[],
        }
    }

    /// Depth-first search for the first string value under any of `keys`,
    /// descending through objects and arrays. This is how JSON-LD date
    /// fields are found regardless of `@graph` nesting.
    pub fn find_string<'a>(&'a self, keys: &[&str]) -> Option<&'a str> {
        match self {
            Value::Object(map) => {
                for k in keys {
                    if let Some(Value::String(s)) = map.get(*k) {
                        return Some(s);
                    }
                }
                map.values().find_map(|v| v.find_string(keys))
            }
            Value::Array(items) => items.iter().find_map(|v| v.find_string(keys)),
            _ => None,
        }
    }
}

/// JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            let val = self.value(depth + 1)?;
            items.push(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Serializes a [`Value`] to compact JSON (object keys in lexicographic
/// order — stable output for golden tests and reports).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(v, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().len(), 2);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""line\nbreak A \"q\" \\ \/ tab\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nbreak A \"q\" \\ / tab\t");
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }

    #[test]
    fn lone_surrogate_is_replacement_char() {
        let v = parse(r#""\ud83dx""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{FFFD}x");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "{'a':1}",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn find_string_descends_graph_nesting() {
        let doc = parse(
            r#"{"@graph": [{"@type": "WebPage"}, {"@type": "Article",
                 "datePublished": "2025-03-14"}]}"#,
        )
        .unwrap();
        assert_eq!(doc.find_string(&["datePublished"]), Some("2025-03-14"));
        assert_eq!(doc.find_string(&["missing"]), None);
    }

    #[test]
    fn find_string_prefers_listed_key_order_at_same_level() {
        let doc = parse(r#"{"dateModified": "b", "datePublished": "a"}"#).unwrap();
        assert_eq!(
            doc.find_string(&["datePublished", "dateModified"]),
            Some("a")
        );
    }

    #[test]
    fn writer_round_trips() {
        let src = r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"}}"#;
        let v = parse(src).unwrap();
        let out = to_string(&v);
        assert_eq!(parse(&out).unwrap(), v);
        assert_eq!(out, src, "writer output should be canonical");
    }

    #[test]
    fn unicode_content_survives() {
        let v = parse("\"café 日本\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "café 日本");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }
}
