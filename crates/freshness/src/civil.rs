//! Proleptic-Gregorian civil-date arithmetic.
//!
//! Day numbers count days since 1970-01-01 (negative before). The
//! conversions are Howard Hinnant's `days_from_civil` / `civil_from_days`
//! algorithms, exact over the full `i32` day range used here.

use std::fmt;

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// Year (e.g. 2025).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

/// English month names, index 0 = January.
pub const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

impl CivilDate {
    /// Creates a date, validating month and day against the calendar.
    pub fn new(year: i32, month: u8, day: u8) -> Option<CivilDate> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(CivilDate { year, month, day })
    }

    /// Days since 1970-01-01.
    pub fn to_day_number(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Date for a day number (days since 1970-01-01).
    pub fn from_day_number(days: i64) -> CivilDate {
        let (year, month, day) = civil_from_days(days);
        CivilDate { year, month, day }
    }

    /// Adds (or subtracts) days.
    pub fn plus_days(self, delta: i64) -> CivilDate {
        CivilDate::from_day_number(self.to_day_number() + delta)
    }

    /// Whole days from `self` to `other` (positive when `other` is later).
    pub fn days_until(self, other: CivilDate) -> i64 {
        other.to_day_number() - self.to_day_number()
    }

    /// `YYYY-MM-DD`.
    pub fn iso(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// `March 14, 2025`.
    pub fn long(self) -> String {
        format!(
            "{} {}, {}",
            MONTH_NAMES[(self.month - 1) as usize],
            self.day,
            self.year
        )
    }

    /// `03/14/2025` (US order, as seen on retail pages).
    pub fn slash_us(self) -> String {
        format!("{:02}/{:02}/{:04}", self.month, self.day, self.year)
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso())
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in a month, accounting for leap years.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Hinnant's `days_from_civil`: days since 1970-01-01.
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Hinnant's `civil_from_days`.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(CivilDate::new(1970, 1, 1).unwrap().to_day_number(), 0);
        assert_eq!(
            CivilDate::from_day_number(0),
            CivilDate::new(1970, 1, 1).unwrap()
        );
    }

    #[test]
    fn known_day_numbers() {
        // 2000-03-01 is day 11017 (post-leap-day of a 400-divisible year).
        assert_eq!(CivilDate::new(2000, 3, 1).unwrap().to_day_number(), 11017);
        // 2025-01-01.
        assert_eq!(CivilDate::new(2025, 1, 1).unwrap().to_day_number(), 20089);
    }

    #[test]
    fn round_trip_across_decades() {
        for days in (-20000..40000).step_by(97) {
            let d = CivilDate::from_day_number(days);
            assert_eq!(d.to_day_number(), days, "round-trip failed at {days} ({d})");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2025));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2025, 2), 28);
    }

    #[test]
    fn validation_rejects_impossible_dates() {
        assert!(CivilDate::new(2025, 2, 29).is_none());
        assert!(CivilDate::new(2024, 2, 29).is_some());
        assert!(CivilDate::new(2025, 13, 1).is_none());
        assert!(CivilDate::new(2025, 0, 1).is_none());
        assert!(CivilDate::new(2025, 4, 31).is_none());
        assert!(CivilDate::new(2025, 4, 0).is_none());
    }

    #[test]
    fn plus_days_and_days_until() {
        let a = CivilDate::new(2025, 12, 30).unwrap();
        let b = a.plus_days(3);
        assert_eq!(b, CivilDate::new(2026, 1, 2).unwrap());
        assert_eq!(a.days_until(b), 3);
        assert_eq!(b.days_until(a), -3);
    }

    #[test]
    fn formatting() {
        let d = CivilDate::new(2025, 3, 4).unwrap();
        assert_eq!(d.iso(), "2025-03-04");
        assert_eq!(d.long(), "March 4, 2025");
        assert_eq!(d.slash_us(), "03/04/2025");
        assert_eq!(d.to_string(), "2025-03-04");
    }

    #[test]
    fn ordering_matches_day_numbers() {
        let a = CivilDate::new(2024, 12, 31).unwrap();
        let b = CivilDate::new(2025, 1, 1).unwrap();
        assert!(a < b);
    }
}
