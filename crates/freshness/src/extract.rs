//! The page-date extraction pipeline (§2.3 of the paper).
//!
//! Priority order: HTML `<meta>` tags → JSON-LD → `<time>` tags → body
//! text. The first channel that yields a parseable, plausible date wins;
//! a separate *modified* date is reported when present so callers can choose
//! published-vs-updated semantics.

use crate::civil::CivilDate;
use crate::dates::{parse_date, scan_text_for_date};
use crate::html::{scan, Event};
use crate::json;

/// Which extraction channel produced the date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateSource {
    /// `<meta property="article:published_time" …>` and friends.
    MetaTag,
    /// `<script type="application/ld+json">` `datePublished`.
    JsonLd,
    /// `<time datetime="…">`.
    TimeTag,
    /// A date found in visible body text.
    BodyText,
}

impl DateSource {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DateSource::MetaTag => "meta",
            DateSource::JsonLd => "json-ld",
            DateSource::TimeTag => "time-tag",
            DateSource::BodyText => "body-text",
        }
    }
}

/// A successfully extracted page date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractedDate {
    /// The publication date.
    pub published: CivilDate,
    /// The modification date, when the page carries one.
    pub modified: Option<CivilDate>,
    /// Channel that produced `published`.
    pub source: DateSource,
}

impl ExtractedDate {
    /// Age in whole days at the reference date `now` (clamped at zero —
    /// pages "from the future" are treated as fresh rather than negative).
    pub fn age_days(&self, now: CivilDate) -> u32 {
        self.published.days_until(now).max(0) as u32
    }

    /// Age using the modification date when available, otherwise the
    /// publication date. The paper's "publication or update dates".
    pub fn effective_age_days(&self, now: CivilDate) -> u32 {
        let base = self.modified.unwrap_or(self.published);
        base.days_until(now).max(0) as u32
    }
}

/// Meta attribute names that announce a publication date.
const META_PUBLISHED_KEYS: &[&str] = &[
    "article:published_time",
    "datepublished",
    "date",
    "pubdate",
    "publishdate",
    "dc.date.issued",
    "parsely-pub-date",
    "sailthru.date",
];

/// Meta attribute names that announce a modification date.
const META_MODIFIED_KEYS: &[&str] = &[
    "article:modified_time",
    "datemodified",
    "og:updated_time",
    "lastmod",
];

/// Extracts the publication (and optional modification) date of a page.
///
/// ```
/// use shift_freshness::{extract_page_date, CivilDate, DateSource};
/// let html = r#"<html><head>
///   <meta property="article:published_time" content="2025-03-14T10:00:00Z">
/// </head><body>…</body></html>"#;
/// let d = extract_page_date(html).unwrap();
/// assert_eq!(d.published, CivilDate::new(2025, 3, 14).unwrap());
/// assert_eq!(d.source, DateSource::MetaTag);
/// ```
pub fn extract_page_date(html: &str) -> Option<ExtractedDate> {
    let events = scan(html);

    let mut meta_published: Option<CivilDate> = None;
    let mut meta_modified: Option<CivilDate> = None;
    let mut jsonld_published: Option<CivilDate> = None;
    let mut jsonld_modified: Option<CivilDate> = None;
    let mut time_tag: Option<CivilDate> = None;
    let mut body_text = String::new();

    for ev in &events {
        match ev {
            Event::Open(tag) if tag.name == "meta" => {
                let key = tag
                    .attr("property")
                    .or_else(|| tag.attr("name"))
                    .or_else(|| tag.attr("itemprop"))
                    .map(|k| k.to_ascii_lowercase());
                let Some(key) = key else { continue };
                let Some(content) = tag.attr("content") else {
                    continue;
                };
                if META_PUBLISHED_KEYS.contains(&key.as_str()) {
                    if meta_published.is_none() {
                        meta_published = parse_date(content);
                    }
                } else if META_MODIFIED_KEYS.contains(&key.as_str()) && meta_modified.is_none() {
                    meta_modified = parse_date(content);
                }
            }
            Event::Open(tag) if tag.name == "time" && time_tag.is_none() => {
                if let Some(dt) = tag.attr("datetime") {
                    time_tag = parse_date(dt);
                }
            }
            Event::Script { kind, body } if kind == "application/ld+json" => {
                if jsonld_published.is_some() {
                    continue;
                }
                if let Ok(doc) = json::parse(body.trim()) {
                    jsonld_published = doc
                        .find_string(&["datePublished", "dateCreated", "uploadDate"])
                        .and_then(parse_date);
                    jsonld_modified = doc.find_string(&["dateModified"]).and_then(parse_date);
                }
            }
            Event::Text(t) if body_text.len() < 8192 => {
                body_text.push(' ');
                body_text.push_str(t);
            }
            _ => {}
        }
    }

    let modified = meta_modified.or(jsonld_modified);

    if let Some(published) = meta_published {
        return Some(ExtractedDate {
            published,
            modified,
            source: DateSource::MetaTag,
        });
    }
    if let Some(published) = jsonld_published {
        return Some(ExtractedDate {
            published,
            modified,
            source: DateSource::JsonLd,
        });
    }
    if let Some(published) = time_tag {
        return Some(ExtractedDate {
            published,
            modified,
            source: DateSource::TimeTag,
        });
    }
    scan_text_for_date(&body_text).map(|published| ExtractedDate {
        published,
        modified,
        source: DateSource::BodyText,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> CivilDate {
        CivilDate::new(y, m, day).unwrap()
    }

    #[test]
    fn meta_tag_wins_over_everything() {
        let html = r#"
        <head>
          <meta property="article:published_time" content="2025-01-01T00:00:00Z">
          <script type="application/ld+json">{"datePublished":"2024-01-01"}</script>
        </head>
        <body><time datetime="2023-01-01">old</time>Published June 1, 2020</body>"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.source, DateSource::MetaTag);
        assert_eq!(e.published, d(2025, 1, 1));
    }

    #[test]
    fn json_ld_second_priority() {
        let html = r#"
        <script type="application/ld+json">
          {"@context":"https://schema.org","@type":"Article","datePublished":"2024-07-15","dateModified":"2024-08-01"}
        </script>
        <body><time datetime="2023-01-01">x</time></body>"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.source, DateSource::JsonLd);
        assert_eq!(e.published, d(2024, 7, 15));
        assert_eq!(e.modified, Some(d(2024, 8, 1)));
    }

    #[test]
    fn json_ld_graph_nesting() {
        let html = r#"<script type="application/ld+json">
          {"@graph":[{"@type":"WebSite"},{"@type":"NewsArticle","datePublished":"2025-02-20"}]}
        </script>"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.published, d(2025, 2, 20));
    }

    #[test]
    fn time_tag_third_priority() {
        let html = r#"<body><time datetime="2024-05-06">May 6</time>no other dates</body>"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.source, DateSource::TimeTag);
        assert_eq!(e.published, d(2024, 5, 6));
    }

    #[test]
    fn body_text_last_resort() {
        let html = "<body><p>Review published March 3, 2024 by our lab.</p></body>";
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.source, DateSource::BodyText);
        assert_eq!(e.published, d(2024, 3, 3));
    }

    #[test]
    fn page_without_dates_yields_none() {
        let html = "<body><p>Timeless content about widgets costing 500 dollars.</p></body>";
        assert_eq!(extract_page_date(html), None);
    }

    #[test]
    fn malformed_json_ld_falls_through() {
        let html = r#"
        <script type="application/ld+json">{invalid json…</script>
        <time datetime="2024-10-10">ok</time>"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.source, DateSource::TimeTag);
    }

    #[test]
    fn meta_modified_is_captured_alongside() {
        let html = r#"
        <meta property="article:published_time" content="2024-01-10">
        <meta property="article:modified_time" content="2024-02-15">"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.modified, Some(d(2024, 2, 15)));
    }

    #[test]
    fn ages_clamp_and_prefer_modified() {
        let e = ExtractedDate {
            published: d(2025, 1, 1),
            modified: Some(d(2025, 3, 1)),
            source: DateSource::MetaTag,
        };
        let now = d(2025, 3, 11);
        assert_eq!(e.age_days(now), 69);
        assert_eq!(e.effective_age_days(now), 10);
        // Future-dated page clamps to zero.
        assert_eq!(e.age_days(d(2024, 12, 31)), 0);
    }

    #[test]
    fn unparseable_meta_value_falls_through_to_next_channel() {
        let html = r#"
        <meta name="date" content="yesterday">
        <time datetime="2024-09-09">ok</time>"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.source, DateSource::TimeTag);
    }

    #[test]
    fn first_meta_occurrence_wins() {
        let html = r#"
        <meta name="date" content="2024-04-04">
        <meta name="date" content="2020-01-01">"#;
        let e = extract_page_date(html).unwrap();
        assert_eq!(e.published, d(2024, 4, 4));
    }
}
