//! Multi-format date-string parsing.
//!
//! Real pages carry dates in a handful of shapes; the extractor must read
//! all of them:
//!
//! * ISO 8601: `2025-03-14`, `2025-03-14T09:30:00Z`, `2025-03-14 09:30`
//! * Long / abbreviated month names: `March 14, 2025`, `Mar 14 2025`,
//!   `14 March 2025`
//! * US slashes: `03/14/2025`
//! * Year-first slashes: `2025/03/14`
//!
//! Parsing is strict about calendar validity (no February 30) and rejects
//! years outside `[1990, 2035]` — anything else on a consumer page is noise
//! (prices, model numbers) rather than a publication date.

use crate::civil::{CivilDate, MONTH_NAMES};

/// Year range accepted as a plausible publication date.
const MIN_YEAR: i32 = 1990;
const MAX_YEAR: i32 = 2035;

/// Parses one date string in any supported format.
///
/// ```
/// use shift_freshness::{parse_date, CivilDate};
/// let d = CivilDate::new(2025, 3, 14).unwrap();
/// assert_eq!(parse_date("2025-03-14"), Some(d));
/// assert_eq!(parse_date("2025-03-14T09:30:00Z"), Some(d));
/// assert_eq!(parse_date("March 14, 2025"), Some(d));
/// assert_eq!(parse_date("Mar 14, 2025"), Some(d));
/// assert_eq!(parse_date("14 March 2025"), Some(d));
/// assert_eq!(parse_date("03/14/2025"), Some(d));
/// assert_eq!(parse_date("not a date"), None);
/// ```
pub fn parse_date(input: &str) -> Option<CivilDate> {
    let s = input.trim();
    if s.is_empty() {
        return None;
    }
    parse_iso(s)
        .or_else(|| parse_month_name(s))
        .or_else(|| parse_slash(s))
        .filter(|d| (MIN_YEAR..=MAX_YEAR).contains(&d.year))
}

/// `YYYY-MM-DD` with optional `T…`/` …` time suffix, or `YYYY/MM/DD`.
fn parse_iso(s: &str) -> Option<CivilDate> {
    let date_part = s.split(['T', ' ']).next().unwrap_or(s);
    let sep = if date_part.contains('-') {
        '-'
    } else if date_part.contains('/') {
        '/'
    } else {
        return None;
    };
    let mut it = date_part.split(sep);
    let y: i32 = it.next()?.parse().ok()?;
    if !(1000..=9999).contains(&y) {
        return None; // year-first format requires a 4-digit year
    }
    let m: u8 = it.next()?.parse().ok()?;
    let d: u8 = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    CivilDate::new(y, m, d)
}

/// `March 14, 2025` / `Mar 14 2025` / `14 March 2025` / `14th of March, 2025`.
fn parse_month_name(s: &str) -> Option<CivilDate> {
    let cleaned: String = s
        .chars()
        .map(|c| if c == ',' || c == '.' { ' ' } else { c })
        .collect();
    let words: Vec<&str> = cleaned
        .split_whitespace()
        .filter(|w| !w.eq_ignore_ascii_case("of"))
        .collect();
    if words.len() < 3 {
        return None;
    }
    // Try (Month Day Year) then (Day Month Year).
    for (mi, di, yi) in [(0, 1, 2), (1, 0, 2)] {
        if words.len() <= yi {
            continue;
        }
        let month = month_from_name(words[mi]);
        let day = parse_day(words[di]);
        let year: Option<i32> = words[yi].parse().ok();
        if let (Some(m), Some(d), Some(y)) = (month, day, year) {
            return CivilDate::new(y, m, d);
        }
    }
    None
}

/// `MM/DD/YYYY` (US order only — ambiguous `DD/MM` inputs with day ≤ 12
/// resolve as US, matching how US consumer sites format dates).
fn parse_slash(s: &str) -> Option<CivilDate> {
    let parts: Vec<&str> = s.split('/').collect();
    if parts.len() != 3 {
        return None;
    }
    let a: u32 = parts[0].trim().parse().ok()?;
    let b: u32 = parts[1].trim().parse().ok()?;
    let y: i32 = parts[2].trim().parse().ok()?;
    if !(1000..=9999).contains(&y) {
        return None;
    }
    // US order; fall back to day-first when the first field can't be a month.
    if (1..=12).contains(&a) {
        CivilDate::new(y, a as u8, u8::try_from(b).ok()?)
    } else if (1..=12).contains(&b) {
        CivilDate::new(y, b as u8, u8::try_from(a).ok()?)
    } else {
        None
    }
}

fn parse_day(word: &str) -> Option<u8> {
    let trimmed = word
        .trim_end_matches("st")
        .trim_end_matches("nd")
        .trim_end_matches("rd")
        .trim_end_matches("th");
    let d: u8 = trimmed.parse().ok()?;
    (1..=31).contains(&d).then_some(d)
}

/// Month number (1–12) from a full or 3-letter English name.
pub fn month_from_name(name: &str) -> Option<u8> {
    let lower = name.to_ascii_lowercase();
    if !lower.is_char_boundary(3.min(lower.len())) {
        return None;
    }
    MONTH_NAMES
        .iter()
        .position(|m| {
            let ml = m.to_ascii_lowercase();
            ml == lower || (lower.len() == 3 && ml.starts_with(&lower[..3]))
        })
        .map(|i| (i + 1) as u8)
}

/// Scans free text for the first parseable date, preferring dates adjacent
/// to publication markers ("published", "updated", "posted").
///
/// This is the paper's "body text" extraction channel; it is deliberately
/// conservative — a page full of prices must not yield a date.
pub fn scan_text_for_date(text: &str) -> Option<CivilDate> {
    // Pass 1: dates following a marker word within a short window. Scanning
    // happens on the lowercased copy throughout (the date formats are
    // case-insensitive) so byte offsets stay consistent even when Unicode
    // lowercasing changes lengths.
    let lower = text.to_lowercase();
    for marker in [
        "published",
        "updated",
        "posted",
        "last modified",
        "reviewed",
    ] {
        let mut from = 0;
        while let Some(i) = lower[from..].find(marker) {
            let start = from + i + marker.len();
            let mut end = (start + 40).min(lower.len());
            while !lower.is_char_boundary(end) {
                end -= 1;
            }
            if let Some(d) = scan_window(&lower[start..end]) {
                return Some(d);
            }
            from = start;
        }
    }
    // Pass 2: any date-shaped token sequence anywhere.
    scan_window(&lower)
}

/// Tries every plausible date-shaped substring of a window.
fn scan_window(window: &str) -> Option<CivilDate> {
    let tokens: Vec<&str> = window
        .split(|c: char| c.is_whitespace() || matches!(c, ':' | ';' | '(' | ')'))
        .filter(|t| !t.is_empty())
        .collect();
    for i in 0..tokens.len() {
        // Single-token formats: ISO / slashes.
        let tok = tokens[i].trim_matches(|c: char| matches!(c, ',' | '.' | '"'));
        if let Some(d) = parse_iso(tok).or_else(|| parse_slash(tok)) {
            if (MIN_YEAR..=MAX_YEAR).contains(&d.year) {
                return Some(d);
            }
        }
        // Three-token month-name formats.
        if i + 2 < tokens.len() {
            let candidate = format!("{} {} {}", tokens[i], tokens[i + 1], tokens[i + 2]);
            if let Some(d) = parse_month_name(&candidate) {
                if (MIN_YEAR..=MAX_YEAR).contains(&d.year) {
                    return Some(d);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> CivilDate {
        CivilDate::new(y, m, day).unwrap()
    }

    #[test]
    fn iso_variants() {
        assert_eq!(parse_date("2025-01-05"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("2025-01-05T23:59:59+02:00"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("2025-01-05 08:00"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("2025/01/05"), Some(d(2025, 1, 5)));
    }

    #[test]
    fn month_name_variants() {
        assert_eq!(parse_date("January 5, 2025"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("Jan 5 2025"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("5 January 2025"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("5th of January, 2025"), Some(d(2025, 1, 5)));
        assert_eq!(parse_date("September 30, 2024"), Some(d(2024, 9, 30)));
    }

    #[test]
    fn slash_variants() {
        assert_eq!(parse_date("01/05/2025"), Some(d(2025, 1, 5)));
        // First field cannot be a month → day-first fallback.
        assert_eq!(parse_date("25/12/2024"), Some(d(2024, 12, 25)));
    }

    #[test]
    fn rejects_invalid_calendar_dates() {
        assert_eq!(parse_date("2025-02-29"), None);
        assert_eq!(parse_date("2025-13-01"), None);
        assert_eq!(parse_date("2025-00-10"), None);
        assert_eq!(parse_date("February 30, 2025"), None);
    }

    #[test]
    fn rejects_implausible_years() {
        assert_eq!(parse_date("1850-01-01"), None);
        assert_eq!(parse_date("3024-01-01"), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "hello", "12345", "12-34", "a/b/c", "month 5, 2025"] {
            assert_eq!(parse_date(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn month_names_full_and_abbreviated() {
        assert_eq!(month_from_name("March"), Some(3));
        assert_eq!(month_from_name("mar"), Some(3));
        assert_eq!(month_from_name("DEC"), Some(12));
        assert_eq!(month_from_name("Marchx"), None);
        assert_eq!(month_from_name("xyz"), None);
    }

    #[test]
    fn text_scan_prefers_marker_adjacent_dates() {
        let text = "Model year 2019. Published March 14, 2025. Price $1,999.";
        assert_eq!(scan_text_for_date(text), Some(d(2025, 3, 14)));
    }

    #[test]
    fn text_scan_finds_bare_dates() {
        let text = "Our testing concluded on 2024-11-02 after two weeks.";
        assert_eq!(scan_text_for_date(text), Some(d(2024, 11, 2)));
    }

    #[test]
    fn text_scan_ignores_non_dates() {
        let text = "The model 3080 costs 1200 dollars and weighs 2.5 kg.";
        assert_eq!(scan_text_for_date(text), None);
    }

    #[test]
    fn text_scan_updated_marker() {
        let text = "Specifications… Updated on 01/05/2025 by staff.";
        assert_eq!(scan_text_for_date(text), Some(d(2025, 1, 5)));
    }

    #[test]
    fn text_scan_unicode_safety() {
        let text = "Published — 2024-06-07 — café naïve 😀";
        assert_eq!(scan_text_for_date(text), Some(d(2024, 6, 7)));
    }
}
