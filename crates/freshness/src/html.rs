//! A tolerant single-pass HTML scanner.
//!
//! No DOM is built: the extractor only needs (a) attributes of `<meta>` and
//! `<time>` tags, (b) the raw contents of `<script type="application/ld+json">`
//! blocks, and (c) the visible text. The scanner is resilient to unclosed
//! tags, attribute quoting styles, and comments — the synthetic corpus
//! injects all of these deliberately.

/// One scanned HTML tag with its attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag {
    /// Lowercased tag name (e.g. `meta`).
    pub name: String,
    /// `(lowercased key, raw value)` attribute pairs, in document order.
    pub attrs: Vec<(String, String)>,
}

impl Tag {
    /// First value of an attribute by (case-insensitive) name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Events produced by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An opening or self-closing tag.
    Open(Tag),
    /// A closing tag (name lowercased).
    Close(String),
    /// A run of text between tags (entity-decoded for the common entities).
    Text(String),
    /// Contents of a `<script>` block (raw, not entity-decoded).
    Script {
        /// The `type` attribute of the script tag, lowercased (empty if
        /// absent).
        kind: String,
        /// Raw block contents.
        body: String,
    },
}

/// Scans an HTML document into a flat event stream.
pub fn scan(html: &str) -> Vec<Event> {
    let bytes = html.as_bytes();
    let mut events = Vec::new();
    let mut pos = 0usize;
    let mut text_start = 0usize;

    while pos < bytes.len() {
        if bytes[pos] != b'<' {
            pos += 1;
            continue;
        }
        // Flush preceding text.
        if pos > text_start {
            push_text(&mut events, &html[text_start..pos]);
        }
        // Comment?
        if html[pos..].starts_with("<!--") {
            match html[pos + 4..].find("-->") {
                Some(i) => pos += 4 + i + 3,
                None => pos = bytes.len(),
            }
            text_start = pos;
            continue;
        }
        // Doctype / processing instruction?
        if html[pos..].starts_with("<!") || html[pos..].starts_with("<?") {
            match html[pos..].find('>') {
                Some(i) => pos += i + 1,
                None => pos = bytes.len(),
            }
            text_start = pos;
            continue;
        }
        // Closing tag?
        if html[pos..].starts_with("</") {
            let end = match html[pos..].find('>') {
                Some(i) => pos + i,
                None => bytes.len(),
            };
            let name = html[pos + 2..end.min(html.len())]
                .trim()
                .to_ascii_lowercase();
            if !name.is_empty() {
                events.push(Event::Close(name));
            }
            pos = (end + 1).min(bytes.len());
            text_start = pos;
            continue;
        }
        // Opening tag.
        let end = match html[pos..].find('>') {
            Some(i) => pos + i,
            None => {
                // Unterminated tag: treat remainder as text and stop.
                push_text(&mut events, &html[pos..]);
                text_start = bytes.len();
                break;
            }
        };
        let inner = html[pos + 1..end].trim_end_matches('/');
        let tag = parse_tag(inner);
        pos = end + 1;
        text_start = pos;

        if let Some(tag) = tag {
            if tag.name == "script" || tag.name == "style" {
                // Raw-text element: capture until the matching close tag.
                let close = format!("</{}", tag.name);
                let rest = &html[pos..];
                let (body_end, after) = match find_ci(rest, &close) {
                    Some(i) => {
                        let after_close = match rest[i..].find('>') {
                            Some(j) => i + j + 1,
                            None => rest.len(),
                        };
                        (i, after_close)
                    }
                    None => (rest.len(), rest.len()),
                };
                if tag.name == "script" {
                    let kind = tag
                        .attr("type")
                        .map(|t| t.trim().to_ascii_lowercase())
                        .unwrap_or_default();
                    events.push(Event::Script {
                        kind,
                        body: rest[..body_end].to_string(),
                    });
                }
                pos += after;
                text_start = pos;
            } else {
                events.push(Event::Open(tag));
            }
        }
    }
    if text_start < bytes.len() {
        push_text(&mut events, &html[text_start..]);
    }
    events
}

/// Case-insensitive substring search.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || n.len() > h.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| {
        h[i..i + n.len()]
            .iter()
            .zip(n)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    })
}

fn push_text(events: &mut Vec<Event>, raw: &str) {
    let decoded = decode_entities(raw);
    if !decoded.trim().is_empty() {
        events.push(Event::Text(decoded));
    }
}

/// Decodes the common named entities plus numeric references.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let mut window_end = rest.len().min(10);
        while !rest.is_char_boundary(window_end) {
            window_end -= 1;
        }
        let semi = rest[..window_end].find(';');
        match semi {
            Some(j) => {
                let entity = &rest[1..j];
                let decoded = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some(' '),
                    "mdash" => Some('—'),
                    "ndash" => Some('–'),
                    _ => entity
                        .strip_prefix("#x")
                        .or_else(|| entity.strip_prefix("#X"))
                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                        .or_else(|| entity.strip_prefix('#').and_then(|d| d.parse().ok()))
                        .and_then(char::from_u32),
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[j + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Parses `name attr=val attr2="val 2"` into a [`Tag`].
fn parse_tag(inner: &str) -> Option<Tag> {
    let inner = inner.trim();
    if inner.is_empty() {
        return None;
    }
    let name_end = inner
        .find(|c: char| c.is_whitespace())
        .unwrap_or(inner.len());
    let name = inner[..name_end].to_ascii_lowercase();
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let mut attrs = Vec::new();
    let mut rest = inner[name_end..].trim_start();
    while !rest.is_empty() {
        // Attribute name.
        let key_end = rest
            .find(|c: char| c.is_whitespace() || c == '=')
            .unwrap_or(rest.len());
        let key = rest[..key_end].to_ascii_lowercase();
        rest = rest[key_end..].trim_start();
        if key.is_empty() {
            break;
        }
        if let Some(after_eq) = rest.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            let (value, remainder) = if let Some(stripped) = after_eq.strip_prefix('"') {
                match stripped.find('"') {
                    Some(i) => (stripped[..i].to_string(), &stripped[i + 1..]),
                    None => (stripped.to_string(), ""),
                }
            } else if let Some(stripped) = after_eq.strip_prefix('\'') {
                match stripped.find('\'') {
                    Some(i) => (stripped[..i].to_string(), &stripped[i + 1..]),
                    None => (stripped.to_string(), ""),
                }
            } else {
                let end = after_eq
                    .find(|c: char| c.is_whitespace())
                    .unwrap_or(after_eq.len());
                (after_eq[..end].to_string(), &after_eq[end..])
            };
            attrs.push((key, decode_entities(&value)));
            rest = remainder.trim_start();
        } else {
            // Boolean attribute.
            attrs.push((key, String::new()));
        }
    }
    Some(Tag { name, attrs })
}

/// Concatenates all visible text of a document (whitespace-normalized).
pub fn visible_text(html: &str) -> String {
    let mut out = String::new();
    for ev in scan(html) {
        if let Event::Text(t) = ev {
            let trimmed = t.trim();
            if !trimmed.is_empty() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(trimmed);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_meta_tags_with_attributes() {
        let html = r#"<head><meta property="article:published_time" content="2025-03-14T10:00:00Z"></head>"#;
        let events = scan(html);
        let meta = events.iter().find_map(|e| match e {
            Event::Open(t) if t.name == "meta" => Some(t),
            _ => None,
        });
        let meta = meta.expect("meta tag found");
        assert_eq!(meta.attr("property"), Some("article:published_time"));
        assert_eq!(meta.attr("content"), Some("2025-03-14T10:00:00Z"));
    }

    #[test]
    fn attribute_quoting_styles() {
        let html = "<meta name=date content='2025-01-01'><meta name=\"x\" content=unquoted>";
        let metas: Vec<Tag> = scan(html)
            .into_iter()
            .filter_map(|e| match e {
                Event::Open(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(metas[0].attr("content"), Some("2025-01-01"));
        assert_eq!(metas[1].attr("content"), Some("unquoted"));
    }

    #[test]
    fn captures_json_ld_script_body() {
        let html = r#"<script type="application/ld+json">{"datePublished":"2025-02-02"}</script>"#;
        let events = scan(html);
        match &events[0] {
            Event::Script { kind, body } => {
                assert_eq!(kind, "application/ld+json");
                assert!(body.contains("datePublished"));
            }
            other => panic!("expected script event, got {other:?}"),
        }
    }

    #[test]
    fn script_close_tag_case_insensitive() {
        let html = "<script>var x = 1;</SCRIPT><p>after</p>";
        let events = scan(html);
        assert!(matches!(&events[0], Event::Script { body, .. } if body.contains("var x")));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Text(t) if t == "after")));
    }

    #[test]
    fn style_contents_are_dropped() {
        let html = "<style>.a { color: red }</style><p>visible</p>";
        assert_eq!(visible_text(html), "visible");
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let html = "<!DOCTYPE html><!-- published 1999-01-01 --><p>body</p>";
        assert_eq!(visible_text(html), "body");
    }

    #[test]
    fn entities_are_decoded_in_text() {
        let html = "<p>Tom&amp;Jerry &lt;3 &#65; &#x42; caf&eacute;</p>";
        assert_eq!(visible_text(html), "Tom&Jerry <3 A B caf&eacute;");
    }

    #[test]
    fn close_events_are_emitted() {
        let events = scan("<div><p>x</p></div>");
        assert!(events.contains(&Event::Close("p".to_string())));
        assert!(events.contains(&Event::Close("div".to_string())));
    }

    #[test]
    fn unterminated_tag_degrades_gracefully() {
        let events = scan("<p>ok</p><meta content=\"2025");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Text(t) if t == "ok")));
    }

    #[test]
    fn time_tag_datetime_attribute() {
        let html = r#"<time datetime="2024-08-09">August 9</time>"#;
        let events = scan(html);
        match &events[0] {
            Event::Open(t) => {
                assert_eq!(t.name, "time");
                assert_eq!(t.attr("datetime"), Some("2024-08-09"));
            }
            other => panic!("expected time tag, got {other:?}"),
        }
    }

    #[test]
    fn boolean_attributes() {
        let events = scan("<input disabled required>");
        match &events[0] {
            Event::Open(t) => {
                assert_eq!(t.attr("disabled"), Some(""));
                assert_eq!(t.attr("required"), Some(""));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        assert!(scan("").is_empty());
        assert_eq!(visible_text(""), "");
    }
}
