//! Property-based tests: generated dates rendered into each markup style
//! must round-trip through the extractor.

use proptest::prelude::*;
use shift_freshness::civil::CivilDate;
use shift_freshness::html::visible_text;
use shift_freshness::json;
use shift_freshness::{extract_page_date, parse_date, DateSource};

fn civil_date() -> impl Strategy<Value = CivilDate> {
    (1995i32..2035, 1u8..=12, 1u8..=28).prop_map(|(y, m, d)| CivilDate::new(y, m, d).unwrap())
}

proptest! {
    /// Day-number conversion round-trips for all generated dates.
    #[test]
    fn civil_day_number_round_trip(d in civil_date()) {
        prop_assert_eq!(CivilDate::from_day_number(d.to_day_number()), d);
    }

    /// Every textual rendering parses back to the same date.
    #[test]
    fn all_formats_round_trip(d in civil_date()) {
        prop_assert_eq!(parse_date(&d.iso()), Some(d));
        prop_assert_eq!(parse_date(&d.long()), Some(d));
        prop_assert_eq!(parse_date(&d.slash_us()), Some(d));
        prop_assert_eq!(parse_date(&format!("{}T08:30:00Z", d.iso())), Some(d));
    }

    /// Meta-tag markup extracts with MetaTag provenance.
    #[test]
    fn meta_markup_extracts(d in civil_date()) {
        let html = format!(
            r#"<head><meta property="article:published_time" content="{}"></head><body>x</body>"#,
            d.iso()
        );
        let e = extract_page_date(&html).unwrap();
        prop_assert_eq!(e.published, d);
        prop_assert_eq!(e.source, DateSource::MetaTag);
    }

    /// JSON-LD markup extracts with JsonLd provenance.
    #[test]
    fn json_ld_markup_extracts(d in civil_date()) {
        let html = format!(
            r#"<script type="application/ld+json">{{"@type":"Article","datePublished":"{}"}}</script>"#,
            d.iso()
        );
        let e = extract_page_date(&html).unwrap();
        prop_assert_eq!(e.published, d);
        prop_assert_eq!(e.source, DateSource::JsonLd);
    }

    /// `<time>` markup extracts with TimeTag provenance.
    #[test]
    fn time_markup_extracts(d in civil_date()) {
        let html = format!(r#"<body><time datetime="{}">{}</time></body>"#, d.iso(), d.long());
        let e = extract_page_date(&html).unwrap();
        prop_assert_eq!(e.published, d);
        prop_assert_eq!(e.source, DateSource::TimeTag);
    }

    /// Body-text markup extracts with BodyText provenance.
    #[test]
    fn body_text_markup_extracts(d in civil_date()) {
        let html = format!("<body><p>Published {} by the test desk.</p></body>", d.long());
        let e = extract_page_date(&html).unwrap();
        prop_assert_eq!(e.published, d);
        prop_assert_eq!(e.source, DateSource::BodyText);
    }

    /// Age is always the exact day difference for past dates.
    #[test]
    fn age_matches_day_difference(d in civil_date(), delta in 0i64..3000) {
        let now = d.plus_days(delta);
        let html = format!(
            r#"<meta name="date" content="{}">"#, d.iso()
        );
        let e = extract_page_date(&html).unwrap();
        prop_assert_eq!(e.age_days(now) as i64, delta);
    }

    /// The HTML scanner never panics on arbitrary input.
    #[test]
    fn scanner_never_panics(s in "\\PC{0,256}") {
        let _ = visible_text(&s);
        let _ = extract_page_date(&s);
    }

    /// The JSON parser never panics, and accepted documents re-serialize to
    /// an equal value.
    #[test]
    fn json_round_trip_on_valid_docs(s in "\\PC{0,64}") {
        let doc = format!(r#"{{"k":"{}"}}"#,
            s.replace(['\\', '"'], ""));
        if let Ok(v) = json::parse(&doc) {
            prop_assert_eq!(json::parse(&json::to_string(&v)).unwrap(), v);
        }
    }
}
