//! Content-plan evaluation: before/after visibility under injection.

use std::sync::Arc;

use shift_corpus::EntityId;
use shift_corpus::World;
use shift_engines::{AnswerEngines, EngineKind};

use crate::intervention::Intervention;
use crate::visibility::{measure_visibility, topic_query_sweep, VisibilityReport};

/// A content plan: an ordered set of interventions for one entity.
#[derive(Debug, Clone)]
pub struct ContentPlan {
    /// Target entity.
    pub entity: EntityId,
    /// Moves to execute.
    pub interventions: Vec<Intervention>,
}

impl ContentPlan {
    /// A plan aligned with the paper's §3.4 guidance: fresh earned
    /// coverage first (the source type AI engines privilege), plus a brand
    /// refresh for the transactional surface.
    pub fn recommended(entity: EntityId) -> ContentPlan {
        ContentPlan {
            entity,
            interventions: vec![
                Intervention::FreshEarnedReviews {
                    count: 6,
                    sentiment: 0.9,
                },
                Intervention::BrandRefresh,
            ],
        }
    }

    /// Total pages the plan will inject.
    pub fn page_count(&self, world: &World, seed: u64) -> usize {
        self.interventions
            .iter()
            .map(|i| i.page_specs(world, self.entity, seed).len())
            .sum()
    }
}

/// Outcome of a plan evaluation.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Visibility before the plan.
    pub before: VisibilityReport,
    /// Visibility after injecting the plan's pages and rebuilding every
    /// engine.
    pub after: VisibilityReport,
    /// Pages injected.
    pub injected_pages: usize,
}

impl PlanOutcome {
    /// Mention-share delta per engine, `after - before`.
    pub fn mention_delta(&self, kind: EngineKind) -> f64 {
        let b = self
            .before
            .engine(kind)
            .map(|v| v.mention_share)
            .unwrap_or(0.0);
        let a = self
            .after
            .engine(kind)
            .map(|v| v.mention_share)
            .unwrap_or(0.0);
        a - b
    }

    /// Support-rate delta per engine (did the plan convert prior-carried
    /// mentions into evidence-backed ones?).
    pub fn support_delta(&self, kind: EngineKind) -> f64 {
        let b = self
            .before
            .engine(kind)
            .map(|v| v.support_rate)
            .unwrap_or(0.0);
        let a = self
            .after
            .engine(kind)
            .map(|v| v.support_rate)
            .unwrap_or(0.0);
        a - b
    }

    /// Renders a before/after table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>10} {:>10} {:>10} {:>10}\n",
            "engine", "mention Δ", "cite Δ", "support Δ", "pos Δ"
        );
        for kind in EngineKind::ALL {
            let b = self.before.engine(kind).unwrap();
            let a = self.after.engine(kind).unwrap();
            let pos_delta = if a.mean_position.is_nan() || b.mean_position.is_nan() {
                "-".to_string()
            } else {
                format!("{:+.1}", a.mean_position - b.mean_position)
            };
            out.push_str(&format!(
                "{:<14} {:>+9.0}% {:>+9.0}% {:>+9.0}% {:>10}\n",
                kind.name(),
                100.0 * self.mention_delta(kind),
                100.0 * (a.citation_share - b.citation_share),
                100.0 * self.support_delta(kind),
                pos_delta,
            ));
        }
        out
    }
}

/// Evaluates `plan` as a controlled experiment: measure visibility on the
/// base world, inject the plan's pages, rebuild all five engines on the
/// augmented world, and re-measure with the same query sweep and seeds.
pub fn evaluate_plan(world: &Arc<World>, plan: &ContentPlan, seed: u64) -> PlanOutcome {
    let queries = topic_query_sweep(world, plan.entity);
    let k = 10;

    let base_stack = AnswerEngines::build(Arc::clone(world));
    let before = measure_visibility(&base_stack, plan.entity, &queries, k, seed);

    let mut specs = Vec::new();
    for (i, intervention) in plan.interventions.iter().enumerate() {
        specs.extend(intervention.page_specs(world, plan.entity, seed.wrapping_add(i as u64)));
    }
    let injected_pages = specs.len();
    let augmented = Arc::new(
        world
            .with_injected_pages(&specs)
            .expect("intervention specs are validated against the world"),
    );
    let after_stack = AnswerEngines::build(augmented);
    let after = measure_visibility(&after_stack, plan.entity, &queries, k, seed);

    PlanOutcome {
        before,
        after,
        injected_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::WorldConfig;

    fn world() -> Arc<World> {
        Arc::new(World::generate(&WorldConfig::small(), 808))
    }

    /// The toolkit's headline mechanism: fresh earned coverage lifts a
    /// weakly-covered entity's AI visibility.
    #[test]
    fn earned_coverage_lifts_niche_ai_visibility() {
        let w = world();
        // Pick the least-mentioned popular-roster SUV (tail of Table 3).
        let infiniti = w.entity_by_name("Infiniti QX60").unwrap();
        let plan = ContentPlan {
            entity: infiniti,
            interventions: vec![Intervention::FreshEarnedReviews {
                count: 8,
                sentiment: 0.95,
            }],
        };
        let outcome = evaluate_plan(&w, &plan, 5);
        assert!(outcome.injected_pages == 8);
        let ai_delta = outcome.after.ai_mention_share() - outcome.before.ai_mention_share();
        assert!(
            ai_delta >= 0.0,
            "fresh earned coverage must not hurt AI visibility ({ai_delta:+.2})"
        );
        // Support rate (evidence backing) must not regress for the AI
        // engines in aggregate.
        let support_delta: f64 = EngineKind::GENERATIVE
            .iter()
            .map(|&k| outcome.support_delta(k))
            .sum();
        assert!(
            support_delta >= -0.2,
            "support should broadly improve, Σdelta {support_delta:+.2}"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let w = world();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        let plan = ContentPlan::recommended(e);
        let a = evaluate_plan(&w, &plan, 3);
        let b = evaluate_plan(&w, &plan, 3);
        for kind in EngineKind::ALL {
            assert_eq!(a.mention_delta(kind), b.mention_delta(kind));
        }
    }

    #[test]
    fn base_world_is_untouched() {
        let w = world();
        let pages_before = w.pages().len();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        let _ = evaluate_plan(&w, &ContentPlan::recommended(e), 3);
        assert_eq!(w.pages().len(), pages_before);
    }

    #[test]
    fn recommended_plan_counts_pages() {
        let w = world();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        let plan = ContentPlan::recommended(e);
        assert_eq!(plan.page_count(&w, 1), 7); // 6 reviews + 1 refresh
    }

    #[test]
    fn render_covers_every_engine() {
        let w = world();
        let e = w.entities()[0].id;
        let outcome = evaluate_plan(&w, &ContentPlan::recommended(e), 1);
        let s = outcome.render();
        for kind in EngineKind::ALL {
            assert!(s.contains(kind.name()));
        }
    }
}
