//! Per-engine visibility measurement for one entity.

use shift_corpus::{topic_specs, EntityId};
use shift_engines::{AnswerEngines, EngineKind};
use shift_llm::supported_entities;

/// Visibility of one entity in one engine, over a query sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineVisibility {
    /// Fraction of queries where the entity's brand domain was cited.
    pub citation_share: f64,
    /// Fraction of queries where the entity appeared in the synthesized
    /// answer's top picks.
    pub mention_share: f64,
    /// Mean 1-based position in the answer text when mentioned
    /// (`f64::NAN` when never mentioned).
    pub mean_position: f64,
    /// Of the mentions, the fraction backed by retrieved evidence (the
    /// rest are prior-carried — fragile visibility that new content can
    /// consolidate or competitors can take).
    pub support_rate: f64,
}

/// Visibility across all five engines.
#[derive(Debug, Clone)]
pub struct VisibilityReport {
    /// The measured entity.
    pub entity: EntityId,
    /// `(engine, visibility)` in [`EngineKind::ALL`] order.
    pub per_engine: Vec<(EngineKind, EngineVisibility)>,
    /// Queries swept.
    pub queries: usize,
}

impl VisibilityReport {
    /// Visibility for one engine.
    pub fn engine(&self, kind: EngineKind) -> Option<EngineVisibility> {
        self.per_engine
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, v)| *v)
    }

    /// Mean mention share across the four generative engines — the
    /// headline "AI visibility" number.
    pub fn ai_mention_share(&self) -> f64 {
        let vals: Vec<f64> = self
            .per_engine
            .iter()
            .filter(|(k, _)| *k != EngineKind::Google)
            .map(|(_, v)| v.mention_share)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// Renders a compact text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>8} {:>9} {:>9} {:>9}\n",
            "engine", "cited", "mentioned", "mean-pos", "supported"
        );
        for (kind, v) in &self.per_engine {
            out.push_str(&format!(
                "{:<14} {:>7.0}% {:>8.0}% {:>9} {:>8.0}%\n",
                kind.name(),
                100.0 * v.citation_share,
                100.0 * v.mention_share,
                if v.mean_position.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}", v.mean_position)
                },
                100.0 * v.support_rate,
            ));
        }
        out
    }
}

/// The standard ranking-query sweep for an entity's topic.
pub fn topic_query_sweep(world: &shift_corpus::World, entity: EntityId) -> Vec<String> {
    let spec = &topic_specs()[world.entity(entity).topic.index()];
    vec![
        format!("Top 10 best {} 2025", spec.plural),
        format!("most reliable {}", spec.plural),
        format!("best {} for the money", spec.plural),
        format!("top rated {} reviewed", spec.plural),
        format!("best {} overall this year", spec.plural),
        format!("{} ranked by overall quality", spec.plural),
    ]
}

/// Measures an entity's visibility across all engines over `queries`.
pub fn measure_visibility(
    stack: &AnswerEngines,
    entity: EntityId,
    queries: &[String],
    k: usize,
    seed: u64,
) -> VisibilityReport {
    let world = stack.world();
    let e = world.entity(entity);
    let mut per_engine = Vec::with_capacity(EngineKind::ALL.len());

    for kind in EngineKind::ALL {
        let mut cited = 0usize;
        let mut mentioned = 0usize;
        let mut supported = 0usize;
        let mut positions = Vec::new();

        for (qi, q) in queries.iter().enumerate() {
            let answer = stack.answer(kind, q, k, seed.wrapping_add(qi as u64));
            if answer.citations.iter().any(|c| c.domain == e.brand_domain) {
                cited += 1;
            }
            // Position in the synthesized "top picks" sentence: the names
            // are comma-separated after the colon.
            if let Some(idx) = answer.text.find(&e.name) {
                mentioned += 1;
                let before = &answer.text[..idx];
                positions.push(1.0 + before.matches(", ").count() as f64);
                if supported_entities(&answer.snippets).contains(&entity) {
                    supported += 1;
                }
            }
        }

        let n = queries.len().max(1) as f64;
        per_engine.push((
            kind,
            EngineVisibility {
                citation_share: cited as f64 / n,
                mention_share: mentioned as f64 / n,
                mean_position: if positions.is_empty() {
                    f64::NAN
                } else {
                    positions.iter().sum::<f64>() / positions.len() as f64
                },
                support_rate: if mentioned == 0 {
                    0.0
                } else {
                    supported as f64 / mentioned as f64
                },
            },
        ));
    }

    VisibilityReport {
        entity,
        per_engine,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::{World, WorldConfig};
    use std::sync::Arc;

    fn stack() -> AnswerEngines {
        let world = Arc::new(World::generate(&WorldConfig::small(), 2121));
        AnswerEngines::build(world)
    }

    #[test]
    fn popular_entity_is_visible_somewhere() {
        let stack = stack();
        // The strongest-prior SUV is the entity the LLM ranks first almost
        // regardless of evidence — it must be widely visible.
        let world = stack.world();
        let (suv, _) = shift_corpus::topic_by_key("suvs").unwrap();
        let strongest = world
            .entities_of_topic(suv)
            .iter()
            .copied()
            .max_by(|a, b| {
                let pa = stack.llm().prior(*a);
                let pb = stack.llm().prior(*b);
                (pa.quality * pa.strength).total_cmp(&(pb.quality * pb.strength))
            })
            .unwrap();
        let queries = topic_query_sweep(world, strongest);
        let report = measure_visibility(&stack, strongest, &queries, 10, 7);
        assert_eq!(report.per_engine.len(), 5);
        assert!(
            report.ai_mention_share() > 0.3,
            "{} should be widely mentioned, got {:.2}",
            world.entity(strongest).name,
            report.ai_mention_share()
        );
        for (_, v) in &report.per_engine {
            assert!((0.0..=1.0).contains(&v.citation_share));
            assert!((0.0..=1.0).contains(&v.mention_share));
            assert!((0.0..=1.0).contains(&v.support_rate));
        }
    }

    #[test]
    fn strong_prior_entity_is_more_visible_than_weak_one() {
        let stack = stack();
        let world = stack.world();
        let (suv, _) = shift_corpus::topic_by_key("suvs").unwrap();
        let score = |e: shift_corpus::EntityId| {
            let p = stack.llm().prior(e);
            p.quality * p.strength
        };
        let ids = world.entities_of_topic(suv);
        let strongest = ids
            .iter()
            .copied()
            .max_by(|a, b| score(*a).total_cmp(&score(*b)))
            .unwrap();
        let weakest = ids
            .iter()
            .copied()
            .min_by(|a, b| score(*a).total_cmp(&score(*b)))
            .unwrap();
        let queries = topic_query_sweep(world, strongest);
        let a = measure_visibility(&stack, strongest, &queries, 10, 7);
        let b = measure_visibility(&stack, weakest, &queries, 10, 7);
        assert!(
            a.ai_mention_share() >= b.ai_mention_share(),
            "{} {:.2} vs {} {:.2}",
            world.entity(strongest).name,
            a.ai_mention_share(),
            world.entity(weakest).name,
            b.ai_mention_share()
        );
    }

    #[test]
    fn report_renders_all_engines() {
        let stack = stack();
        let e = stack.world().entities()[0].id;
        let queries = topic_query_sweep(stack.world(), e);
        let s = measure_visibility(&stack, e, &queries, 10, 1).render();
        for kind in EngineKind::ALL {
            assert!(s.contains(kind.name()));
        }
    }

    #[test]
    fn engine_accessor_works() {
        let stack = stack();
        let e = stack.world().entities()[0].id;
        let queries = topic_query_sweep(stack.world(), e);
        let report = measure_visibility(&stack, e, &queries, 10, 1);
        assert!(report.engine(EngineKind::Google).is_some());
        assert_eq!(report.queries, queries.len());
    }
}
