//! # shift-aeo
//!
//! An Answer Engine Optimization (AEO) toolkit — the operationalization of
//! the paper's §3.4 "Road Ahead":
//!
//! > *"Consequently, developing analytical strategies that dissect query
//! > patterns to generate actionable content plans becomes vital for
//! > optimization success."*
//!
//! The toolkit answers the practitioner's questions on the simulated
//! substrate, where counterfactuals are actually runnable:
//!
//! * [`visibility`] — measure an entity's **visibility** per engine:
//!   citation share (is the brand's own domain cited?), mention share
//!   (does the entity appear in synthesized answers?), mean position when
//!   mentioned, and support rate (was the mention evidence-backed or
//!   prior-carried?).
//! * [`intervention`] — the content moves available to a brand: fresh
//!   earned reviews, social buzz, brand-page refreshes.
//! * [`plan`] — run a [`plan::ContentPlan`] as a controlled
//!   experiment: inject the plan's pages into a copy of the world, rebuild
//!   the engines, and diff visibility before/after.
//!
//! The headline findings of the paper become decision rules here: content
//! freshness moves AI engines more than Google; earned placements move
//! Claude/GPT most; for popular entities the pre-training prior dominates
//! and *no* short-term content plan moves the ranking much — exactly the
//! "positional ranking appears less critical for popular entities"
//! observation of §3.4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod intervention;
pub mod plan;
pub mod visibility;

pub use intervention::Intervention;
pub use plan::{evaluate_plan, ContentPlan, PlanOutcome};
pub use visibility::{measure_visibility, EngineVisibility, VisibilityReport};
