//! Content interventions: the moves available to a brand.

use shift_corpus::inject::{
    brand_refresh_spec, fresh_review_spec, social_thread_spec, InjectedPageSpec,
};
use shift_corpus::{EntityId, SourceType, World};

/// One content move in an AEO plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Intervention {
    /// Place `count` fresh reviews on earned-media outlets covering the
    /// entity's topic (highest-authority outlets first). `sentiment` is
    /// the review score in `[0, 1]`.
    FreshEarnedReviews {
        /// Number of reviews to place.
        count: usize,
        /// Review sentiment (observed quality).
        sentiment: f64,
    },
    /// Seed `count` discussion threads on social platforms.
    SocialBuzz {
        /// Number of threads.
        count: usize,
        /// Thread sentiment.
        sentiment: f64,
    },
    /// Republish the brand's own product page with today's date.
    BrandRefresh,
}

impl Intervention {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Intervention::FreshEarnedReviews { count, .. } => {
                format!("{count} fresh earned reviews")
            }
            Intervention::SocialBuzz { count, .. } => format!("{count} social threads"),
            Intervention::BrandRefresh => "brand page refresh".to_string(),
        }
    }

    /// Expands the intervention into concrete page specs for `entity`.
    ///
    /// Outlets are chosen deterministically: earned reviews go to the
    /// highest-authority earned domains covering the entity's topic (one
    /// per domain), social threads alternate over the social platforms
    /// covering it.
    pub fn page_specs(&self, world: &World, entity: EntityId, seed: u64) -> Vec<InjectedPageSpec> {
        let e = world.entity(entity);
        let spec = &shift_corpus::topic_specs()[e.topic.index()];
        let hosts_of = |st: SourceType| -> Vec<&str> {
            let mut ds: Vec<_> = world
                .domains()
                .iter()
                .filter(|d| d.source_type == st && d.covers(e.topic, spec.vertical))
                .collect();
            ds.sort_by(|a, b| b.authority.total_cmp(&a.authority));
            ds.into_iter().map(|d| d.host.as_str()).collect()
        };

        match self {
            Intervention::FreshEarnedReviews { count, sentiment } => {
                let hosts = hosts_of(SourceType::Earned);
                (0..*count)
                    .filter_map(|i| hosts.get(i % hosts.len().max(1)).copied())
                    .enumerate()
                    .map(|(i, host)| {
                        fresh_review_spec(
                            world,
                            entity,
                            host,
                            *sentiment,
                            (i % 7) as i64, // staggered over the last week
                            seed.wrapping_add(i as u64),
                        )
                    })
                    .collect()
            }
            Intervention::SocialBuzz { count, sentiment } => {
                let hosts = hosts_of(SourceType::Social);
                (0..*count)
                    .filter_map(|i| hosts.get(i % hosts.len().max(1)).copied())
                    .enumerate()
                    .map(|(i, host)| {
                        social_thread_spec(
                            world,
                            entity,
                            host,
                            *sentiment,
                            (i % 5) as i64,
                            seed.wrapping_add(0x50C1A1 + i as u64),
                        )
                    })
                    .collect()
            }
            Intervention::BrandRefresh => vec![brand_refresh_spec(world, entity, seed)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_corpus::{PageKind, WorldConfig};

    fn world() -> World {
        World::generate(&WorldConfig::small(), 404)
    }

    #[test]
    fn earned_reviews_target_earned_outlets() {
        let w = world();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        let specs = Intervention::FreshEarnedReviews {
            count: 4,
            sentiment: 0.9,
        }
        .page_specs(&w, e, 1);
        assert_eq!(specs.len(), 4);
        for s in &specs {
            let d = w.domain(w.domain_by_host(&s.host).unwrap());
            assert_eq!(d.source_type, SourceType::Earned, "host {}", s.host);
            assert_eq!(s.kind, PageKind::Review);
            assert!(s.age_days < 8, "reviews must be fresh");
        }
        // Highest-authority outlet first.
        let first = w.domain(w.domain_by_host(&specs[0].host).unwrap());
        assert!(first.authority > 0.9, "{} not a top outlet", specs[0].host);
    }

    #[test]
    fn social_buzz_targets_social_platforms() {
        let w = world();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        let specs = Intervention::SocialBuzz {
            count: 3,
            sentiment: 0.8,
        }
        .page_specs(&w, e, 1);
        assert_eq!(specs.len(), 3);
        for s in &specs {
            let d = w.domain(w.domain_by_host(&s.host).unwrap());
            assert_eq!(d.source_type, SourceType::Social);
        }
    }

    #[test]
    fn brand_refresh_is_one_fresh_page_on_own_domain() {
        let w = world();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        let specs = Intervention::BrandRefresh.page_specs(&w, e, 1);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].host, "toyota.com");
        assert_eq!(specs[0].age_days, 1);
    }

    #[test]
    fn specs_inject_cleanly() {
        let w = world();
        let e = w.entity_by_name("Toyota RAV4").unwrap();
        for intervention in [
            Intervention::FreshEarnedReviews {
                count: 3,
                sentiment: 0.9,
            },
            Intervention::SocialBuzz {
                count: 2,
                sentiment: 0.7,
            },
            Intervention::BrandRefresh,
        ] {
            let specs = intervention.page_specs(&w, e, 9);
            let w2 = w.with_injected_pages(&specs).expect("valid specs");
            assert_eq!(w2.pages().len(), w.pages().len() + specs.len());
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            Intervention::FreshEarnedReviews {
                count: 5,
                sentiment: 0.9
            }
            .label(),
            "5 fresh earned reviews"
        );
        assert_eq!(Intervention::BrandRefresh.label(), "brand page refresh");
    }
}
