//! Cross-crate classifier evaluation: the intent classifier
//! (`shift-classify`) must recover the intent labels the query generator
//! (`shift-queries`) wrote, and the typology classifier must agree with
//! corpus ground truth — the two measurement instruments the Figure 3
//! experiment depends on.

use navigating_shift::classify::intent::QueryIntentLabel;
use navigating_shift::classify::{classify_intent, eval::evaluate_typology};
use navigating_shift::corpus::{World, WorldConfig};
use navigating_shift::queries::{intent_queries, QueryIntent};

fn label_of(intent: QueryIntent) -> QueryIntentLabel {
    match intent {
        QueryIntent::Informational => QueryIntentLabel::Informational,
        QueryIntent::Consideration => QueryIntentLabel::Consideration,
        QueryIntent::Transactional => QueryIntentLabel::Transactional,
    }
}

#[test]
fn intent_classifier_recovers_generated_intents() {
    let world = World::generate(&WorldConfig::small(), 616);
    let queries = intent_queries(&world, 80, 9);
    let mut correct = 0usize;
    let mut confusion: Vec<(String, QueryIntent, QueryIntentLabel)> = Vec::new();
    for q in &queries {
        let predicted = classify_intent(&q.text);
        if predicted == label_of(q.intent) {
            correct += 1;
        } else {
            confusion.push((q.text.clone(), q.intent, predicted));
        }
    }
    let accuracy = correct as f64 / queries.len() as f64;
    assert!(
        accuracy > 0.9,
        "intent accuracy {accuracy:.3}; first confusions: {:?}",
        &confusion[..confusion.len().min(5)]
    );
}

#[test]
fn intent_classifier_is_consistent_per_class() {
    let world = World::generate(&WorldConfig::small(), 616);
    let queries = intent_queries(&world, 60, 10);
    // Per-class recall must be reasonable for each intent, not just in
    // aggregate (Figure 3 slices by intent).
    for intent in QueryIntent::ALL {
        let of_class: Vec<_> = queries.iter().filter(|q| q.intent == intent).collect();
        let hits = of_class
            .iter()
            .filter(|q| classify_intent(&q.text) == label_of(intent))
            .count();
        let recall = hits as f64 / of_class.len().max(1) as f64;
        assert!(recall > 0.8, "{} recall {recall:.2}", intent.label());
    }
}

#[test]
fn typology_classifier_accuracy_holds_at_default_scale() {
    let world = World::generate(&WorldConfig::default_scale(), 616);
    let cm = evaluate_typology(&world);
    assert!(cm.total() > 2000);
    assert!(
        cm.accuracy() > 0.9,
        "typology accuracy {:.3}\n{}",
        cm.accuracy(),
        cm.render()
    );
    // No class may collapse: recall over 0.75 for each of the three types.
    for st in navigating_shift::corpus::SourceType::ALL {
        assert!(
            cm.recall(st) > 0.75,
            "{} recall {:.2}\n{}",
            st.label(),
            cm.recall(st),
            cm.render()
        );
    }
}
