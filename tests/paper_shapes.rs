//! Shape tests: the qualitative claims of the paper must hold on the
//! synthetic substrate at quick scale. These are the "does the
//! reproduction reproduce?" gates; exact magnitudes live in
//! EXPERIMENTS.md.

use navigating_shift::core::study::{Study, StudyConfig};
use navigating_shift::core::{fig1, fig3, fig4, tab1, tab2, tab3};
use navigating_shift::corpus::Vertical;
use navigating_shift::engines::EngineKind;
use navigating_shift::queries::QueryIntent;

fn study() -> Study {
    Study::generate(&StudyConfig::quick(), 20251101)
}

/// §2.1: uniformly low AI-vs-Google domain overlap, GPT-4o lowest,
/// Perplexity highest.
#[test]
fn headline_overlap_ordering() {
    let r = fig1::run(&study());
    let asc = r.ascending();
    assert_eq!(asc[0], EngineKind::Gpt4o, "order: {asc:?}");
    assert_eq!(
        *asc.last().unwrap(),
        EngineKind::Perplexity,
        "order: {asc:?}"
    );
    for (kind, overlap, _) in &r.per_engine {
        assert!(*overlap < 0.5, "{kind:?} overlap {overlap:.2} not 'low'");
    }
}

/// §2.2: Claude concentrates on earned media with near-zero social;
/// Google is the most balanced / most social.
#[test]
fn typology_shapes() {
    let r = fig3::run(&study());
    let claude = r.mix(EngineKind::Claude).unwrap();
    let google = r.mix(EngineKind::Google).unwrap();
    assert!(claude[1] > 0.5, "Claude earned share {:.2}", claude[1]);
    assert!(claude[2] < 0.05, "Claude social share {:.2}", claude[2]);
    assert!(google[2] > 0.1, "Google social share {:.2}", google[2]);
    // Transactional queries swing every AI engine toward brand.
    for kind in EngineKind::GENERATIVE {
        let trans = r.mix_at(QueryIntent::Transactional, kind).unwrap();
        if trans.iter().sum::<f64>() > 0.0 {
            assert!(
                trans[0] > 0.35,
                "{kind:?} transactional brand share {:.2}",
                trans[0]
            );
        }
    }
}

/// §2.3: AI engines cite newer content than Google in both verticals, and
/// automotive runs older than consumer electronics.
#[test]
fn freshness_shapes() {
    let r = fig4::run(&study());
    for vertical in [Vertical::ConsumerElectronics, Vertical::Automotive] {
        let google = r.median(vertical, EngineKind::Google).unwrap();
        let claude = r.median(vertical, EngineKind::Claude).unwrap();
        let gpt = r.median(vertical, EngineKind::Gpt4o).unwrap();
        assert!(
            claude < google,
            "{}: Claude {claude} vs Google {google}",
            vertical.label()
        );
        assert!(
            gpt < google,
            "{}: GPT {gpt} vs Google {google}",
            vertical.label()
        );
    }
    let ce = r
        .median(Vertical::ConsumerElectronics, EngineKind::Claude)
        .unwrap();
    let auto = r.median(Vertical::Automotive, EngineKind::Claude).unwrap();
    assert!(auto > 1.5 * ce, "vertical gap too small: {auto} vs {ce}");
}

/// §3.2/§3.3 (Table 1): niche rankings are far more perturbation-sensitive
/// than popular ones; strict grounding stabilizes, dramatically so for
/// niche.
#[test]
fn perturbation_shapes() {
    let r = tab1::run(&study());
    assert!(
        r.niche.ss_normal > 1.5 * r.popular.ss_normal,
        "niche/popular SS gap too small: {:.2} vs {:.2}",
        r.niche.ss_normal,
        r.popular.ss_normal
    );
    assert!(r.popular.ss_strict < r.popular.ss_normal);
    assert!(r.niche.ss_strict < 0.5 * r.niche.ss_normal);
    assert!(r.popular.esi >= r.popular.ss_normal * 0.8);
    assert!(r.niche.esi >= r.niche.ss_normal * 0.8);
}

/// §3.2/§3.3 (Table 2): pairwise consistency is near-perfect for popular
/// entities (especially strict) and degraded for niche.
#[test]
fn consistency_shapes() {
    let r = tab2::run(&study());
    assert!(
        r.popular.0 > r.niche.0,
        "normal: {:?} vs {:?}",
        r.popular,
        r.niche
    );
    assert!(r.popular.1 > 0.82);
    assert!(r.niche.1 > r.niche.0, "strict must help niche");
    assert!(r.popular.1 >= r.niche.1 - 0.02);
    // The paper's "16% of ranked entities lacked snippet support".
    assert!(r.popular_unsupported_rate > 0.03 && r.popular_unsupported_rate < 0.45);
}

/// §3.2.2 (Table 3): citation misses concentrate on the tail of the brand
/// roster.
#[test]
fn missrate_shapes() {
    let r = tab3::run(&study());
    let head = (r.rate("Toyota").unwrap() + r.rate("Honda").unwrap()) / 2.0;
    let tail = (r.rate("Cadillac").unwrap() + r.rate("Infiniti").unwrap()) / 2.0;
    assert!(head < 0.3, "head miss {head:.2}");
    assert!(
        tail > head,
        "no popularity gradient: head {head:.2} tail {tail:.2}"
    );
}
