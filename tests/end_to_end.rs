//! Cross-crate integration tests: the full pipeline from world generation
//! through engines to experiment results.

use std::sync::Arc;

use navigating_shift::classify::{classify_url, eval::evaluate_typology};
use navigating_shift::corpus::{World, WorldConfig};
use navigating_shift::engines::{AnswerEngines, EngineKind};
use navigating_shift::freshness::extract_page_date;
use navigating_shift::metrics::jaccard;
use navigating_shift::search::{RankingParams, SearchEngine};

fn world() -> Arc<World> {
    Arc::new(World::generate(&WorldConfig::small(), 2024))
}

#[test]
fn search_results_resolve_to_world_pages() {
    let w = world();
    let engine = SearchEngine::build(&w, RankingParams::google());
    let serp = engine.search("best laptops for students", 10);
    assert!(!serp.results.is_empty());
    for r in &serp.results {
        let pid = w.page_by_url(&r.url).expect("SERP URL resolves to a page");
        assert_eq!(w.page(pid).url, r.url);
    }
}

#[test]
fn citations_carry_consistent_typology_and_dates() {
    let w = world();
    let stack = AnswerEngines::build(w.clone());
    let answer = stack.answer(EngineKind::Perplexity, "top 10 best smartphones", 10, 1);
    assert!(!answer.citations.is_empty());
    for c in &answer.citations {
        // The ground-truth source type of a citation matches the domain's.
        let page = w.page(c.page);
        assert_eq!(
            w.domain(page.domain).source_type,
            c.source_type,
            "type mismatch for {}",
            c.url
        );
        // Rule-based classification agrees with ground truth most of the
        // time — here spot-check that it at least returns something.
        assert!(classify_url(&c.url).is_some(), "unclassifiable: {}", c.url);
        // Age matches the world clock.
        assert!((c.age_days - page.age_days(w.now_day()) as f64).abs() < 0.5);
    }
}

#[test]
fn freshness_pipeline_agrees_with_world_ground_truth() {
    let w = world();
    let stack = AnswerEngines::build(w.clone());
    // Consideration phrasing — "to buy" would classify transactional and
    // trip Claude's citation reticence.
    let answer = stack.answer(EngineKind::Claude, "best electric cars 2025", 10, 2);
    let mut checked = 0;
    for c in &answer.citations {
        let pid = w.page_by_url(&c.url).unwrap();
        let html = w.page_html(pid);
        if let Some(extracted) = extract_page_date(&html) {
            assert_eq!(
                extracted.published.to_day_number(),
                w.page(pid).published_day,
                "extraction disagrees with generator for {}",
                c.url
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no dated citations to check");
}

#[test]
fn typology_classifier_is_accurate_on_the_full_corpus() {
    let w = world();
    let cm = evaluate_typology(&w);
    assert!(
        cm.accuracy() > 0.9,
        "accuracy {:.3}\n{}",
        cm.accuracy(),
        cm.render()
    );
}

#[test]
fn engines_are_deterministic_end_to_end() {
    let w = world();
    let stack_a = AnswerEngines::build(w.clone());
    let stack_b = AnswerEngines::build(w.clone());
    for kind in EngineKind::ALL {
        let a = stack_a.answer(kind, "most reliable SUVs", 10, 9);
        let b = stack_b.answer(kind, "most reliable SUVs", 10, 9);
        assert_eq!(a.domains(), b.domains(), "{kind:?} answers diverge");
        assert_eq!(a.text, b.text);
    }
}

#[test]
fn google_and_ai_engines_live_in_different_domain_spaces() {
    let w = world();
    let stack = AnswerEngines::build(w.clone());
    let queries = [
        "top 10 most reliable smartphones",
        "best reviewed airlines this season",
        "best hotels for families",
    ];
    let mut overlaps = Vec::new();
    for q in &queries {
        let g = stack.answer(EngineKind::Google, q, 10, 0);
        let a = stack.answer(EngineKind::Gpt4o, q, 10, 0);
        overlaps.push(jaccard(&g.domains(), &a.domains()));
    }
    let mean = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
    assert!(
        mean < 0.5,
        "GPT-4o/Google domain overlap unexpectedly high: {mean:.2}"
    );
}

#[test]
fn full_quick_study_runs_every_experiment() {
    use navigating_shift::core::study::{Study, StudyConfig};
    use navigating_shift::core::{fig1, fig2, fig3, fig4, tab1, tab2, tab3};

    // Tiny workload: this is a smoke test that the seven runners compose.
    let mut config = StudyConfig::quick();
    config.ranking_queries = 12;
    config.comparison_popular = 6;
    config.comparison_niche = 6;
    config.intent_per_class = 5;
    config.vertical_queries = 4;
    config.bias_trials = 3;
    config.perturb_runs = 3;
    config.missrate_runs = 10;
    let study = Study::generate(&config, 99);

    let f1 = fig1::run(&study);
    assert_eq!(f1.per_engine.len(), 4);
    let f2 = fig2::run(&study);
    assert_eq!(f2.per_engine.len(), 4);
    let f3 = fig3::run(&study);
    assert_eq!(f3.aggregate.len(), 5);
    let f4 = fig4::run(&study);
    assert_eq!(f4.cells.len(), 10);
    let t1 = tab1::run(&study);
    assert!(t1.popular.ss_normal.is_finite());
    let t2 = tab2::run(&study);
    assert!((-1.0..=1.0).contains(&t2.niche.0));
    let t3 = tab3::run(&study);
    assert!(!t3.rates.is_empty());

    // Every render is non-empty and mentions its artifact.
    for (render, tag) in [
        (f1.render(), "Figure 1"),
        (f2.render(), "Figure 2"),
        (f3.render(), "Figure 3"),
        (f4.render(), "Figure 4"),
        (t1.render(), "Table 1"),
        (t2.render(), "Table 2"),
        (t3.render(), "Table 3"),
    ] {
        assert!(render.contains(tag), "missing {tag}");
    }
}
