//! Offline, API-compatible subset of `parking_lot`.
//!
//! Backed by `std::sync` primitives with `parking_lot`'s ergonomics:
//! `lock()` / `read()` / `write()` return guards directly (no
//! `Result`), and a panicked holder never poisons the lock — the next
//! holder simply sees the data as-is, exactly like real `parking_lot`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must not be poisoned");
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
