//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.size_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let strat = vec(0u8..5, 2..7);
        let mut rng = TestRng::for_test("vec-bounds");
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            lens.insert(v.len());
        }
        assert!(lens.len() >= 4, "lengths explored: {lens:?}");
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = vec(0u8..2, 3usize);
        let mut rng = TestRng::for_test("vec-exact");
        assert_eq!(strat.generate(&mut rng).len(), 3);
    }
}
