//! String strategies from regex-like patterns.
//!
//! Supports exactly the pattern language the workspace's tests use:
//! literal characters, character classes (`[a-z0-9_-]`), the printable
//! class `\PC`, and `{m}` / `{m,n}` quantifiers.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Token {
    Literal(char),
    Class(Vec<(char, char)>),
    AnyPrintable,
}

#[derive(Debug, Clone)]
struct Piece {
    token: Token,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let token = match chars[i] {
            '\\' => {
                let class = chars.get(i + 1).copied().unwrap_or('\\');
                match class {
                    'P' | 'p' => {
                        // `\PC` (printable) is the only category in use.
                        i += 3;
                        Token::AnyPrintable
                    }
                    other => {
                        i += 2;
                        Token::Literal(other)
                    }
                }
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Token::Class(ranges)
            }
            c => {
                i += 1;
                Token::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { token, min, max });
    }
    pieces
}

fn printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, with an occasional multi-byte character so
    // byte-offset bugs in consumers still get exercised.
    const EXOTIC: [char; 8] = ['é', 'ß', 'λ', 'Ж', '中', '日', '✓', '€'];
    if rng.index(10) == 0 {
        EXOTIC[rng.index(EXOTIC.len())]
    } else {
        char::from_u32(0x20 + rng.index(0x7F - 0x20) as u32).unwrap()
    }
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.size_in(piece.min, piece.max);
        for _ in 0..count {
            match &piece.token {
                Token::Literal(c) => out.push(*c),
                Token::AnyPrintable => out.push(printable(rng)),
                Token::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                        .sum();
                    let mut pick = rng.index(total as usize) as u32;
                    for &(lo, hi) in ranges {
                        let width = hi as u32 - lo as u32 + 1;
                        if pick < width {
                            out.push(char::from_u32(lo as u32 + pick).unwrap());
                            break;
                        }
                        pick -= width;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(name: &str) -> TestRng {
        TestRng::for_test(name)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng("class");
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9]{0,8}", &mut r);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            let head = s.chars().next().unwrap();
            assert!(head.is_ascii_lowercase());
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_with_literals_and_dash() {
        let mut r = rng("dash");
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9_-]{1,6}", &mut r);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn printable_category_lengths() {
        let mut r = rng("pc");
        let mut max_seen = 0;
        for _ in 0..100 {
            let s = generate_matching("\\PC{0,64}", &mut r);
            let n = s.chars().count();
            assert!(n <= 64);
            assert!(s.chars().all(|c| !c.is_control()));
            max_seen = max_seen.max(n);
        }
        assert!(max_seen > 32, "quantifier range unexplored: {max_seen}");
    }

    #[test]
    fn literal_pattern_round_trips() {
        let mut r = rng("lit");
        assert_eq!(generate_matching("abc", &mut r), "abc");
    }
}
