//! The deterministic RNG behind every property test.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test random source. Seeded from the test's name so every run of
/// the suite explores the same cases (reproducible failures, no flakes).
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name, folded into a fixed tweak so the
        // stream differs from plain user seeds.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty set");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform size in `[lo, hi]`.
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.index(hi - lo + 1)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
