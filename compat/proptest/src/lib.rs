//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no network access, so this workspace ships
//! its own property-testing harness covering exactly the surface the
//! test suites use: the [`proptest!`] macro, `prop_assert*` /
//! [`prop_assume!`], [`prop_oneof!`], range / tuple / `Just` / string
//! strategies, `prop::collection::vec`, `prop::sample::subsequence`,
//! and the `prop_map` / `prop_flat_map` / `prop_shuffle` combinators.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message.
//! * **Deterministic.** Each test derives its RNG seed from its own
//!   name, so failures reproduce exactly across runs and machines.
//! * **32 cases by default** (upstream: 256) to keep tier-1 fast;
//!   override per-block with `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Per-block configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, in one import.

    /// Upstream exposes the crate under the `prop` alias (e.g.
    /// `prop::collection::vec`).
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ()> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                // Rejected cases (prop_assume) simply move on; a case
                // budget of `cases` accepted runs is not enforced.
                let _ = (case, outcome);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0u32..10, (x, y) in (0usize..5, -2i32..3)) {
            prop_assert!(a < 10);
            prop_assert!(x < 5);
            prop_assert!((-2..3).contains(&y));
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn configured_block_runs(v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!(v.len() < 6);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just("a"), Just("b"), Just("c")];
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn deterministic_across_runners() {
        let strat = prop::collection::vec(0u32..1000, 3..10);
        let mut a = crate::test_runner::TestRng::for_test("det");
        let mut b = crate::test_runner::TestRng::for_test("det");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
