//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream there is no value tree and no shrinking — a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles generated collections (for `Vec` values).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.index(i + 1);
            v.swap(i, j);
        }
        v
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`. Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.index(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-unit")
    }

    #[test]
    fn map_and_flat_map_compose() {
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1).prop_map(move |v| (n, v)));
        let mut r = rng();
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let strat = Just(vec![1, 2, 3, 4, 5]).prop_shuffle();
        let mut r = rng();
        let mut v = strat.generate(&mut r);
        v.sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let strat = 1u8..=3;
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut r));
        }
        assert_eq!(seen, [1u8, 2, 3].into_iter().collect());
    }

    #[test]
    fn f64_range_in_bounds() {
        let strat = -2.5..7.5f64;
        let mut r = rng();
        for _ in 0..1000 {
            let x = strat.generate(&mut r);
            assert!((-2.5..7.5).contains(&x));
        }
    }
}
