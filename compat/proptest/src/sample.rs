//! Sampling strategies (`prop::sample::subsequence`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding a random order-preserving subsequence of `values`
/// with exactly `count` elements.
///
/// Upstream accepts size ranges; this workspace only draws exact counts.
pub fn subsequence<T: Clone>(values: Vec<T>, count: usize) -> Subsequence<T> {
    assert!(
        count <= values.len(),
        "subsequence count {count} exceeds {} available values",
        values.len()
    );
    Subsequence { values, count }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    count: usize,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        // Floyd-style: draw `count` distinct indices, then emit them in
        // positional order to preserve the subsequence property.
        let n = self.values.len();
        let mut picked = vec![false; n];
        let mut remaining = self.count;
        let mut free = n;
        for i in 0..n {
            // Probability remaining/free keeps the choice uniform.
            if remaining > 0 && rng.index(free) < remaining {
                picked[i] = true;
                remaining -= 1;
            }
            free -= 1;
        }
        self.values
            .iter()
            .zip(&picked)
            .filter(|(_, &p)| p)
            .map(|(v, _)| v.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_length_subsequence_is_identity() {
        let strat = subsequence(vec![1, 2, 3, 4], 4);
        let mut rng = TestRng::for_test("subseq-full");
        assert_eq!(strat.generate(&mut rng), vec![1, 2, 3, 4]);
    }

    #[test]
    fn partial_subsequence_preserves_order() {
        let base: Vec<u32> = (0..10).collect();
        let strat = subsequence(base, 4);
        let mut rng = TestRng::for_test("subseq-order");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert_eq!(v.len(), 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "not ordered: {v:?}");
        }
    }
}
