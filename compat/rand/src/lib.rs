//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships its own implementation of the small `rand`
//! surface the repo actually uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic across platforms. The stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng`, which is fine:
//! every consumer in this workspace seeds explicitly and asserts
//! *reproducibility*, never specific draw values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a uniform value in `[0, 1)`.
    fn gen_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_unit() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state-initialized via SplitMix64 like the reference implementation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = StdRng::splitmix(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Shuffle and pick operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let inc = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&inc));
        }
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }
}
