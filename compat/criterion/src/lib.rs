//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the harness surface the workspace's benches use —
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring wall-clock
//! time per sample and printing a `min / mean / max` line per benchmark.
//! No statistical outlier analysis, no HTML reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver. One per `criterion_group!`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints one summary line.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Times `f` with an input payload and prints one summary line.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (separator line, parity with upstream API).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter value ("group/<param>").
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample (after one untimed warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<48} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(4);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 4 samples.
        assert_eq!(calls, 5);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::from_parameter("small").to_string(), "small");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
