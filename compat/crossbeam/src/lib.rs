//! Offline, API-compatible subset of `crossbeam`.
//!
//! Provides the two facilities this workspace relies on:
//!
//! * [`channel`] — multi-producer **multi-consumer** bounded/unbounded
//!   channels with `try_send` (backpressure), `recv_timeout` (deadlines)
//!   and disconnect semantics, built on `Mutex<VecDeque>` + condvars.
//! * [`thread`] — scoped threads, delegating to `std::thread::scope`
//!   (the closure takes no `&Scope` argument, unlike upstream; callers
//!   in this workspace use the std-style API).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;

pub mod thread {
    //! Scoped threads over `std::thread::scope`.

    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Runs `f` with a scope handle; all threads spawned on the scope are
    /// joined before this returns. Mirrors `crossbeam::thread::scope`'s
    /// `Result` return: `Err` is never produced here because child panics
    /// resurface as panics on join (acceptable for in-workspace callers).
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}
