//! MPMC channels: bounded (with backpressure) and unbounded.
//!
//! Semantics follow `crossbeam-channel`:
//!
//! * `Sender` and `Receiver` are both cloneable.
//! * `send` blocks while the buffer is full; `try_send` fails fast with
//!   [`TrySendError::Full`].
//! * `recv` blocks while empty; once every sender is dropped the buffer
//!   drains and further receives report disconnection.
//! * Dropping the last receiver makes every send fail with
//!   [`SendError`] / [`TrySendError::Disconnected`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: channel empty and disconnected.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently buffered.
    Empty,
    /// Channel empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline elapsed with no message.
    Timeout,
    /// Channel empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with capacity `cap`.
///
/// A zero capacity is rounded up to one (upstream's rendezvous semantics
/// are not needed in this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is buffered or all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.buf.len() < state.cap {
                state.buf.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Attempts to buffer the message without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.buf.len() >= state.cap {
            return Err(TrySendError::Full(msg));
        }
        state.buf.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().buf.len()
    }

    /// True when no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Attempts to take a buffered message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.buf.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
            if res.timed_out() && state.buf.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().buf.len()
    }

    /// True when no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_send_full_then_drain() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_on_sender_drop_drains_first() {
        let (tx, rx) = bounded(4);
        tx.send(10).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(20));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_all_items_delivered_exactly_once() {
        let (tx, rx) = bounded(4);
        let n_producers = 4;
        let n_consumers = 3;
        let per_producer = 250usize;
        let mut received: Vec<usize> = thread::scope(|s| {
            let consumers: Vec<_> = (0..n_consumers)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for p in 0..n_producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop((tx, rx));
            consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        received.sort_unstable();
        let expected: Vec<usize> = (0..n_producers * per_producer).collect();
        assert_eq!(received, expected);
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
